package scenario

import (
	"strings"
	"testing"
)

// jsonOf converts or fails the test.
func jsonOf(t *testing.T, src string) string {
	t.Helper()
	b, err := yamlToJSON([]byte(src))
	if err != nil {
		t.Fatalf("yamlToJSON(%q): %v", src, err)
	}
	return string(b)
}

func TestYAMLToJSON(t *testing.T) {
	cases := []struct {
		name, yaml, json string
	}{
		{
			name: "nested mappings and scalar types",
			yaml: "a: 1\nb:\n  c: -2.5\n  d: true\n  e: null\n  f: hello\n",
			json: `{"a":1,"b":{"c":-2.5,"d":true,"e":null,"f":"hello"}}`,
		},
		{
			name: "block sequence of scalars",
			yaml: "xs:\n  - 1\n  - two\n  - false\n",
			json: `{"xs":[1,"two",false]}`,
		},
		{
			name: "sequence at the key's own indent",
			yaml: "xs:\n- 1\n- 2\n",
			json: `{"xs":[1,2]}`,
		},
		{
			name: "sequence of mappings",
			yaml: "rules:\n  - match: a\n    enable: false\n  - match: b\n",
			json: `{"rules":[{"enable":false,"match":"a"},{"match":"b"}]}`,
		},
		{
			name: "inline flow list",
			yaml: "bits: [0, 7]\nempty: []\n",
			json: `{"bits":[0,7],"empty":[]}`,
		},
		{
			name: "quoted scalars and comments",
			yaml: "# leading comment\na: \"x # not a comment\" # trailing\nb: 'it''s'\nc: '#lead'\n",
			json: `{"a":"x # not a comment","b":"it's","c":"#lead"}`,
		},
		{
			name: "document marker and blank lines",
			yaml: "---\n\na: 1\n\n",
			json: `{"a":1}`,
		},
		{
			name: "dash alone nests a block item",
			yaml: "xs:\n  -\n    k: 1\n  -\n",
			json: `{"xs":[{"k":1},null]}`,
		},
		{
			name: "tilde and null spellings",
			yaml: "a: ~\nb: null\n",
			json: `{"a":null,"b":null}`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := jsonOf(t, c.yaml); got != c.json {
				t.Errorf("got %s, want %s", got, c.json)
			}
		})
	}
}

func TestYAMLToJSONRejects(t *testing.T) {
	cases := []struct {
		name, yaml, frag string
	}{
		{"empty document", "", "empty"},
		{"comment-only document", "# nothing\n", "empty"},
		{"tab indentation", "a:\n\tb: 1\n", "tab"},
		{"flow mapping", "a: {b: 1}\n", "flow mapping"},
		{"block scalar", "a: |\n  text\n", "block scalar"},
		{"anchor", "a: &x 1\n", "anchors"},
		{"alias", "a: *x\n", "anchors"},
		{"tag", "a: !!str x\n", "anchors"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"duplicate key inline map", "xs:\n  - a: 1\n    a: 2\n", "duplicate key"},
		{"bare scalar at top level", "just a scalar\n", "expected"},
		{"unterminated double quote", "a: \"x\n", "double-quoted"},
		{"unterminated single quote", "a: 'x\n", "single-quoted"},
		{"unterminated flow list", "a: [1, 2\n", "unterminated flow list"},
		{"nested flow list", "a: [[1], 2]\n", "nested flow"},
		{"empty flow element", "a: [1, , 2]\n", "empty element"},
		{"quoted key", "\"a\": 1\n", "expected"},
		{"stray de-indent", "a:\n    b: 1\n  c: 2\n", "de-indent"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := yamlToJSON([]byte(c.yaml))
			if err == nil {
				t.Fatalf("yamlToJSON(%q) must fail", c.yaml)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not mention %q", err, c.frag)
			}
		})
	}
}

func TestYAMLDepthLimit(t *testing.T) {
	var sb strings.Builder
	for i := 0; i <= maxYAMLDepth+1; i++ {
		sb.WriteString(strings.Repeat("  ", i))
		sb.WriteString("k:\n")
	}
	sb.WriteString(strings.Repeat("  ", maxYAMLDepth+2))
	sb.WriteString("leaf: 1\n")
	if _, err := yamlToJSON([]byte(sb.String())); err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("deep nesting must fail with a nesting error, got %v", err)
	}
}
