package serialize

// Campaign checkpoints: the durable state gofi-serve writes while a
// campaign runs, so a paused, cancelled or killed node loses nothing.
// A checkpoint is the campaign's entire fold state at a trial-index
// frontier — the partial Aggregate (a left fold over trials [0, next)
// in strict index order), the sequential stopping watcher's state, and
// the next trial index. Because both folds are pure left folds of the
// index-ordered record stream, resuming from a checkpoint and folding
// trials [next, N) onward is byte-identical to an uninterrupted run:
// same aggregate bits, same stop index, same record stream.
//
// The format is versioned JSON (one object), human-inspectable, with
// the float64 confidence-drop sum carried as its exact bit pattern so a
// round trip is bit-level, immune to decimal formatting.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"gofi/internal/campaign"
	"gofi/internal/campaign/stats"
)

// CampaignCheckpointVersion is the checkpoint wire version this build
// writes and reads.
const CampaignCheckpointVersion = 1

// ErrCheckpointVersion is wrapped by Load errors for checkpoints written
// under an unknown wire version; callers gate on it with errors.Is.
var ErrCheckpointVersion = errors.New("serialize: unsupported campaign checkpoint version")

// AggregateState is the bit-exact serialized form of a
// campaign.Aggregate: the float sum travels as its IEEE-754 bit pattern.
type AggregateState struct {
	Trials          int    `json:"trials"`
	Top1Mis         int    `json:"top1_mis"`
	OutOfTop5       int    `json:"out_of_top5"`
	NonFinite       int    `json:"non_finite"`
	BigConfDrop     int    `json:"big_conf_drop"`
	Skipped         int    `json:"skipped"`
	ConfDropSumBits uint64 `json:"conf_drop_sum_bits"`
}

// NewAggregateState captures an aggregate.
func NewAggregateState(a campaign.Aggregate) AggregateState {
	return AggregateState{
		Trials:          a.Trials,
		Top1Mis:         a.Top1Mis,
		OutOfTop5:       a.OutOfTop5,
		NonFinite:       a.NonFinite,
		BigConfDrop:     a.BigConfDrop,
		Skipped:         a.Skipped,
		ConfDropSumBits: math.Float64bits(a.ConfDropSum),
	}
}

// Aggregate restores the captured aggregate, bit-for-bit.
func (s AggregateState) Aggregate() campaign.Aggregate {
	return campaign.Aggregate{
		Trials:      s.Trials,
		Top1Mis:     s.Top1Mis,
		OutOfTop5:   s.OutOfTop5,
		NonFinite:   s.NonFinite,
		BigConfDrop: s.BigConfDrop,
		Skipped:     s.Skipped,
		ConfDropSum: math.Float64frombits(s.ConfDropSumBits),
	}
}

// CampaignCheckpoint is one campaign's durable state at a trial-index
// frontier.
type CampaignCheckpoint struct {
	// Version is the checkpoint wire version (CampaignCheckpointVersion).
	Version int `json:"v"`
	// ID is the campaign's server-assigned identifier.
	ID string `json:"id"`
	// State is the campaign's lifecycle state at checkpoint time (the
	// serve package's spelling: "running", "paused", "done", ...).
	State string `json:"state"`
	// Spec is the submitted campaign spec, verbatim — opaque here so the
	// checkpoint format does not chase the spec schema.
	Spec json.RawMessage `json:"spec,omitempty"`
	// NextTrial is the fold frontier: trials [0, NextTrial) are folded
	// into Agg, and a resume starts execution at this global index.
	NextTrial int `json:"next_trial"`
	// StopTrial is the global index the stopping rule fired on, -1 when
	// it has not (or no rule is attached).
	StopTrial int `json:"stop_trial"`
	// Agg is the partial aggregate over trials [0, NextTrial).
	Agg AggregateState `json:"aggregate"`
	// Watcher is the sequential stopping watcher's fold state; nil when
	// the campaign has no stop rule.
	Watcher *stats.SequentialState `json:"watcher,omitempty"`
}

// EncodeCampaignCheckpoint writes ck to w as one JSON document, stamping
// the current version.
func EncodeCampaignCheckpoint(w io.Writer, ck CampaignCheckpoint) error {
	ck.Version = CampaignCheckpointVersion
	if err := json.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("serialize: encode campaign checkpoint: %w", err)
	}
	return nil
}

// DecodeCampaignCheckpoint reads one checkpoint from r. Corrupt input
// returns an error (never panics); an unknown version returns an error
// wrapping ErrCheckpointVersion.
func DecodeCampaignCheckpoint(r io.Reader) (CampaignCheckpoint, error) {
	var ck CampaignCheckpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return CampaignCheckpoint{}, fmt.Errorf("serialize: decode campaign checkpoint: %w", err)
	}
	if ck.Version != CampaignCheckpointVersion {
		return CampaignCheckpoint{}, fmt.Errorf("%w: checkpoint version %d, this build reads %d",
			ErrCheckpointVersion, ck.Version, CampaignCheckpointVersion)
	}
	if ck.NextTrial < 0 {
		return CampaignCheckpoint{}, fmt.Errorf("serialize: campaign checkpoint: negative next trial %d", ck.NextTrial)
	}
	if ck.StopTrial < -1 {
		return CampaignCheckpoint{}, fmt.Errorf("serialize: campaign checkpoint: stop trial %d below -1", ck.StopTrial)
	}
	return ck, nil
}

// SaveCampaignCheckpoint writes the checkpoint to path atomically (temp
// file + rename), so a crash mid-write can never leave a torn
// checkpoint behind — the previous one survives intact.
func SaveCampaignCheckpoint(path string, ck CampaignCheckpoint) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("serialize: campaign checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := EncodeCampaignCheckpoint(tmp, ck); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serialize: campaign checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serialize: campaign checkpoint: %w", err)
	}
	return nil
}

// LoadCampaignCheckpoint reads a checkpoint from path.
func LoadCampaignCheckpoint(path string) (CampaignCheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return CampaignCheckpoint{}, fmt.Errorf("serialize: campaign checkpoint: %w", err)
	}
	defer f.Close()
	return DecodeCampaignCheckpoint(f)
}
