package serialize

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gofi/internal/campaign"
	"gofi/internal/campaign/stats"
)

func sampleCheckpoint() CampaignCheckpoint {
	w := stats.NewSequential(stats.StopRule{HalfWidth: 0.05, Confidence: 0.9, MinTrials: 10})
	for t := 0; t < 40; t++ {
		w.Observe(t, t%7 == 0, t%13 == 0)
	}
	st := w.State()
	return CampaignCheckpoint{
		ID:        "c-test-01",
		State:     "running",
		Spec:      json.RawMessage(`{"v":1,"model":"convnet","trials":200}`),
		NextTrial: 40,
		StopTrial: -1,
		Agg: NewAggregateState(campaign.Aggregate{
			Trials:      40,
			Top1Mis:     6,
			OutOfTop5:   2,
			NonFinite:   1,
			BigConfDrop: 4,
			Skipped:     3,
			ConfDropSum: 0.1 + 0.2, // deliberately non-representable exactly
		}),
		Watcher: &st,
	}
}

// TestCampaignCheckpointRoundTrip pins that encode → decode restores the
// checkpoint exactly, including the float sum's bit pattern and the
// watcher's full fold state.
func TestCampaignCheckpointRoundTrip(t *testing.T) {
	ck := sampleCheckpoint()
	var buf bytes.Buffer
	if err := EncodeCampaignCheckpoint(&buf, ck); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeCampaignCheckpoint(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Version != CampaignCheckpointVersion {
		t.Fatalf("version %d, want %d", got.Version, CampaignCheckpointVersion)
	}
	if got.ID != ck.ID || got.State != ck.State || got.NextTrial != ck.NextTrial || got.StopTrial != ck.StopTrial {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Agg != ck.Agg {
		t.Fatalf("aggregate state mismatch:\n got %+v\nwant %+v", got.Agg, ck.Agg)
	}
	wantAgg := ck.Agg.Aggregate()
	gotAgg := got.Agg.Aggregate()
	if math.Float64bits(gotAgg.ConfDropSum) != math.Float64bits(wantAgg.ConfDropSum) {
		t.Fatalf("conf-drop sum bits changed: %x vs %x",
			math.Float64bits(gotAgg.ConfDropSum), math.Float64bits(wantAgg.ConfDropSum))
	}
	if got.Watcher == nil {
		t.Fatal("watcher state dropped")
	}
	if *got.Watcher != *ck.Watcher {
		t.Fatalf("watcher state mismatch:\n got %+v\nwant %+v", *got.Watcher, *ck.Watcher)
	}
	if !bytes.Equal(got.Spec, ck.Spec) {
		t.Fatalf("spec payload changed: %s vs %s", got.Spec, ck.Spec)
	}
}

// TestCampaignCheckpointVersionGate pins the named-error contract: an
// unknown version is rejected with ErrCheckpointVersion.
func TestCampaignCheckpointVersionGate(t *testing.T) {
	ck := sampleCheckpoint()
	var buf bytes.Buffer
	if err := EncodeCampaignCheckpoint(&buf, ck); err != nil {
		t.Fatalf("encode: %v", err)
	}
	bumped := strings.Replace(buf.String(), `"v":1`, `"v":99`, 1)
	if bumped == buf.String() {
		t.Fatal("test bug: version field not found in encoding")
	}
	_, err := DecodeCampaignCheckpoint(strings.NewReader(bumped))
	if !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("version 99: got %v, want ErrCheckpointVersion", err)
	}
}

// TestCampaignCheckpointRejectsCorrupt covers the decode guard rails:
// garbage, truncation and out-of-range indices all error, never panic.
func TestCampaignCheckpointRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"garbage":        "ceci n'est pas un checkpoint",
		"empty":          "",
		"negative next":  `{"v":1,"next_trial":-3,"stop_trial":-1}`,
		"bad stop":       `{"v":1,"next_trial":0,"stop_trial":-2}`,
		"wrong type":     `{"v":"one","next_trial":0}`,
		"version zero":   `{"next_trial":10}`,
		"truncated json": `{"v":1,"next_trial":`,
	}
	for name, raw := range cases {
		if _, err := DecodeCampaignCheckpoint(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: decode accepted %q", name, raw)
		}
	}
}

// TestSaveLoadCampaignCheckpoint exercises the atomic file path: save,
// load, overwrite with a later frontier, load again, and confirm the
// temp file did not linger.
func TestSaveLoadCampaignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c-test-01.ckpt")
	ck := sampleCheckpoint()
	if err := SaveCampaignCheckpoint(path, ck); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.NextTrial != ck.NextTrial || got.Agg != ck.Agg {
		t.Fatalf("first load mismatch: %+v", got)
	}

	ck.NextTrial = 80
	ck.Agg.Trials = 80
	if err := SaveCampaignCheckpoint(path, ck); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, err = LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if got.NextTrial != 80 || got.Agg.Trials != 80 {
		t.Fatalf("overwrite not visible: %+v", got)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}

	if _, err := LoadCampaignCheckpoint(filepath.Join(dir, "absent.ckpt")); err == nil {
		t.Fatal("loading a missing checkpoint succeeded")
	}
}

// TestAggregateStateIdentity pins the converter pair on awkward floats:
// every bit pattern, including NaN payloads and negative zero, survives.
func TestAggregateStateIdentity(t *testing.T) {
	for _, bits := range []uint64{
		0, 0x8000000000000000, // ±0
		0x3ff0000000000000,    // 1.0
		0x7ff0000000000000,    // +Inf
		0x7ff8000000000001,    // NaN with payload
		0x0000000000000001,    // smallest subnormal
		math.Float64bits(0.30000000000000004),
	} {
		a := campaign.Aggregate{Trials: 9, ConfDropSum: math.Float64frombits(bits)}
		back := NewAggregateState(a).Aggregate()
		if math.Float64bits(back.ConfDropSum) != bits {
			t.Errorf("bits %x came back as %x", bits, math.Float64bits(back.ConfDropSum))
		}
		if back.Trials != 9 {
			t.Errorf("trials lost: %d", back.Trials)
		}
	}
}
