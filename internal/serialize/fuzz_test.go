package serialize

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"gofi/internal/campaign/stats"
	"gofi/internal/nn"
)

// fuzzModel builds a tiny model with every persisted state kind: conv
// and linear parameters plus batch-norm running statistics.
func fuzzModel(seed int64) nn.Layer {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential("m",
		nn.NewConv2d("c", rng, 3, 2, 3, nn.Conv2dConfig{Pad: 1}),
		nn.NewBatchNorm2d("bn", 2),
		nn.NewGlobalAvgPool2d("gap"),
		nn.NewFlatten("fl"),
		nn.NewLinear("fc", rng, 2, 2, true),
	)
}

// FuzzLoadCorrupt feeds arbitrary bytes to Load: a corrupt or truncated
// checkpoint must surface as an error, never a panic — checkpoints come
// from disk and disks lie.
func FuzzLoadCorrupt(f *testing.F) {
	var good bytes.Buffer
	if err := Save(&good, fuzzModel(1)); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())/2])
	f.Add([]byte("not a gob stream"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		model := fuzzModel(2)
		// Error or success are both fine; only a panic is a bug. A
		// successful load must have matched the architecture's shapes, so
		// spot-check the model still forward-runs by reading a parameter.
		if err := Load(bytes.NewReader(raw), model); err == nil {
			if n := len(nn.AllParams(model)); n == 0 {
				t.Fatal("load succeeded but model lost its parameters")
			}
		}
	})
}

// FuzzSaveLoadRoundTrip perturbs parameter values with arbitrary bit
// patterns and asserts Save → Load restores them bit-for-bit (or
// NaN-for-NaN: gob transports float32 through float64, which quiets NaN
// payloads, so NaN equality is by class, not bits).
func FuzzSaveLoadRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0x3f800000), uint32(0x7f800000))
	f.Add(uint32(0x7fc00000), uint32(0x80000001), uint32(0xff800000))
	f.Fuzz(func(t *testing.T, a, b, c uint32) {
		src := fuzzModel(3)
		vals := []float32{
			math.Float32frombits(a),
			math.Float32frombits(b),
			math.Float32frombits(c),
		}
		i := 0
		for _, p := range nn.AllParams(src) {
			d := p.Data.Data()
			for j := range d {
				d[j] = vals[i%len(vals)]
				i++
			}
		}

		var buf bytes.Buffer
		if err := Save(&buf, src); err != nil {
			t.Fatalf("save: %v", err)
		}
		dst := fuzzModel(4)
		if err := Load(&buf, dst); err != nil {
			t.Fatalf("load: %v", err)
		}

		sp, dp := nn.AllParams(src), nn.AllParams(dst)
		if len(sp) != len(dp) {
			t.Fatalf("parameter count %d vs %d", len(sp), len(dp))
		}
		for k := range sp {
			sd, dd := sp[k].Data.Data(), dp[k].Data.Data()
			for j := range sd {
				want, got := sd[j], dd[j]
				if math.IsNaN(float64(want)) && math.IsNaN(float64(got)) {
					continue
				}
				if math.Float32bits(want) != math.Float32bits(got) {
					t.Fatalf("param %q[%d]: wrote %x, read back %x",
						sp[k].Name, j, math.Float32bits(want), math.Float32bits(got))
				}
			}
		}
	})
}

// FuzzCampaignCheckpointLoad feeds arbitrary bytes to the campaign
// checkpoint decoder: corruption must always surface as an error, never a
// panic, and anything that decodes must satisfy the format's invariants.
func FuzzCampaignCheckpointLoad(f *testing.F) {
	var good bytes.Buffer
	st := stats.NewSequential(stats.StopRule{HalfWidth: 0.05}).State()
	if err := EncodeCampaignCheckpoint(&good, CampaignCheckpoint{
		ID: "fuzz", State: "running", NextTrial: 7, StopTrial: -1, Watcher: &st,
	}); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())/2])
	f.Add([]byte(`{"v":2,"next_trial":0,"stop_trial":-1}`))
	f.Add([]byte(`{"v":1,"next_trial":-1,"stop_trial":-1}`))
	f.Add([]byte(`{"v":1,"next_trial":0,"stop_trial":-9}`))
	f.Add([]byte("not json at all"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		ck, err := DecodeCampaignCheckpoint(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if ck.Version != CampaignCheckpointVersion {
			t.Fatalf("decode accepted version %d", ck.Version)
		}
		if ck.NextTrial < 0 || ck.StopTrial < -1 {
			t.Fatalf("decode accepted invalid indices: next=%d stop=%d", ck.NextTrial, ck.StopTrial)
		}
	})
}

// FuzzCampaignCheckpointRoundTrip is the property test: any checkpoint
// built from fuzzer-chosen fields — including an arbitrary bit pattern
// for the float sum — encodes and decodes back to itself exactly.
func FuzzCampaignCheckpointRoundTrip(f *testing.F) {
	f.Add("c1", "running", 10, -1, uint64(0x3ff0000000000000), true)
	f.Add("", "paused", 0, 0, uint64(0x7ff8000000000001), false)
	f.Add("x\x00y", "done", 1 << 20, 42, uint64(0x8000000000000000), true)
	f.Fuzz(func(t *testing.T, id, state string, next, stop int, sumBits uint64, withWatcher bool) {
		// encoding/json coerces invalid UTF-8 to U+FFFD (documented, not a
		// format property under test); compare in the coerced domain.
		id = strings.ToValidUTF8(id, "�")
		state = strings.ToValidUTF8(state, "�")
		if next < 0 {
			next = -next
		}
		if next < 0 { // math.MinInt negation overflow
			next = 0
		}
		if stop < -1 {
			stop = -1
		}
		ck := CampaignCheckpoint{
			ID:        id,
			State:     state,
			Spec:      json.RawMessage(`{"trials":3}`),
			NextTrial: next,
			StopTrial: stop,
			Agg:       AggregateState{Trials: next, ConfDropSumBits: sumBits},
		}
		if withWatcher {
			w := stats.NewSequential(stats.StopRule{HalfWidth: 0.01, MinTrials: 5})
			for i := 0; i < next%50; i++ {
				w.Observe(i, i%3 == 0, false)
			}
			st := w.State()
			ck.Watcher = &st
		}
		var buf bytes.Buffer
		if err := EncodeCampaignCheckpoint(&buf, ck); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodeCampaignCheckpoint(&buf)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if got.ID != ck.ID || got.State != ck.State || got.NextTrial != ck.NextTrial || got.StopTrial != ck.StopTrial {
			t.Fatalf("header round trip: got %+v want %+v", got, ck)
		}
		if got.Agg != ck.Agg {
			t.Fatalf("aggregate round trip: got %+v want %+v", got.Agg, ck.Agg)
		}
		if (got.Watcher == nil) != (ck.Watcher == nil) {
			t.Fatal("watcher presence changed")
		}
		if ck.Watcher != nil && *got.Watcher != *ck.Watcher {
			t.Fatalf("watcher round trip: got %+v want %+v", *got.Watcher, *ck.Watcher)
		}
	})
}
