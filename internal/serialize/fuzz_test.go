package serialize

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"gofi/internal/nn"
)

// fuzzModel builds a tiny model with every persisted state kind: conv
// and linear parameters plus batch-norm running statistics.
func fuzzModel(seed int64) nn.Layer {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential("m",
		nn.NewConv2d("c", rng, 3, 2, 3, nn.Conv2dConfig{Pad: 1}),
		nn.NewBatchNorm2d("bn", 2),
		nn.NewGlobalAvgPool2d("gap"),
		nn.NewFlatten("fl"),
		nn.NewLinear("fc", rng, 2, 2, true),
	)
}

// FuzzLoadCorrupt feeds arbitrary bytes to Load: a corrupt or truncated
// checkpoint must surface as an error, never a panic — checkpoints come
// from disk and disks lie.
func FuzzLoadCorrupt(f *testing.F) {
	var good bytes.Buffer
	if err := Save(&good, fuzzModel(1)); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())/2])
	f.Add([]byte("not a gob stream"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		model := fuzzModel(2)
		// Error or success are both fine; only a panic is a bug. A
		// successful load must have matched the architecture's shapes, so
		// spot-check the model still forward-runs by reading a parameter.
		if err := Load(bytes.NewReader(raw), model); err == nil {
			if n := len(nn.AllParams(model)); n == 0 {
				t.Fatal("load succeeded but model lost its parameters")
			}
		}
	})
}

// FuzzSaveLoadRoundTrip perturbs parameter values with arbitrary bit
// patterns and asserts Save → Load restores them bit-for-bit (or
// NaN-for-NaN: gob transports float32 through float64, which quiets NaN
// payloads, so NaN equality is by class, not bits).
func FuzzSaveLoadRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0x3f800000), uint32(0x7f800000))
	f.Add(uint32(0x7fc00000), uint32(0x80000001), uint32(0xff800000))
	f.Fuzz(func(t *testing.T, a, b, c uint32) {
		src := fuzzModel(3)
		vals := []float32{
			math.Float32frombits(a),
			math.Float32frombits(b),
			math.Float32frombits(c),
		}
		i := 0
		for _, p := range nn.AllParams(src) {
			d := p.Data.Data()
			for j := range d {
				d[j] = vals[i%len(vals)]
				i++
			}
		}

		var buf bytes.Buffer
		if err := Save(&buf, src); err != nil {
			t.Fatalf("save: %v", err)
		}
		dst := fuzzModel(4)
		if err := Load(&buf, dst); err != nil {
			t.Fatalf("load: %v", err)
		}

		sp, dp := nn.AllParams(src), nn.AllParams(dst)
		if len(sp) != len(dp) {
			t.Fatalf("parameter count %d vs %d", len(sp), len(dp))
		}
		for k := range sp {
			sd, dd := sp[k].Data.Data(), dp[k].Data.Data()
			for j := range sd {
				want, got := sd[j], dd[j]
				if math.IsNaN(float64(want)) && math.IsNaN(float64(got)) {
					continue
				}
				if math.Float32bits(want) != math.Float32bits(got) {
					t.Fatalf("param %q[%d]: wrote %x, read back %x",
						sp[k].Name, j, math.Float32bits(want), math.Float32bits(got))
				}
			}
		}
	})
}
