// Package serialize persists model state — trained parameters and
// batch-norm running statistics — so expensive trainings (the campaigns'
// prerequisite) can be saved and reloaded across runs. The format is a
// versioned gob stream keyed by parameter names and walk order, with shape
// checking on load.
package serialize

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"gofi/internal/nn"
)

// formatVersion guards against loading checkpoints written by an
// incompatible release.
const formatVersion = 1

type checkpoint struct {
	Version int
	Params  []savedTensor
	BNStats []savedBN
}

type savedTensor struct {
	Name  string
	Shape []int
	Data  []float32
}

type savedBN struct {
	Name                    string
	RunningMean, RunningVar []float32
}

// Save writes the model's parameters and batch-norm statistics to w.
func Save(w io.Writer, model nn.Layer) error {
	ck := checkpoint{Version: formatVersion}
	for _, p := range nn.AllParams(model) {
		ck.Params = append(ck.Params, savedTensor{
			Name:  p.Name,
			Shape: p.Data.Shape(),
			Data:  append([]float32(nil), p.Data.Data()...),
		})
	}
	nn.Walk(model, func(path string, l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2d); ok {
			ck.BNStats = append(ck.BNStats, savedBN{
				Name:        path,
				RunningMean: append([]float32(nil), bn.RunningMean.Data()...),
				RunningVar:  append([]float32(nil), bn.RunningVar.Data()...),
			})
		}
	})
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fmt.Errorf("serialize: encode: %w", err)
	}
	return nil
}

// Load reads a checkpoint from r into the model. The model must have the
// same architecture (parameter count, names in order, shapes) as the one
// that was saved.
func Load(r io.Reader, model nn.Layer) error {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("serialize: decode: %w", err)
	}
	if ck.Version != formatVersion {
		return fmt.Errorf("serialize: checkpoint version %d, this build reads %d", ck.Version, formatVersion)
	}
	params := nn.AllParams(model)
	if len(params) != len(ck.Params) {
		return fmt.Errorf("serialize: checkpoint has %d parameters, model has %d", len(ck.Params), len(params))
	}
	for i, p := range params {
		s := ck.Params[i]
		if p.Name != s.Name {
			return fmt.Errorf("serialize: parameter %d is %q in checkpoint but %q in model", i, s.Name, p.Name)
		}
		if !sameInts(p.Data.Shape(), s.Shape) {
			return fmt.Errorf("serialize: parameter %q shape %v in checkpoint but %v in model", s.Name, s.Shape, p.Data.Shape())
		}
		copy(p.Data.Data(), s.Data)
	}
	var bns []*nn.BatchNorm2d
	nn.Walk(model, func(_ string, l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2d); ok {
			bns = append(bns, bn)
		}
	})
	if len(bns) != len(ck.BNStats) {
		return fmt.Errorf("serialize: checkpoint has %d batch-norm layers, model has %d", len(ck.BNStats), len(bns))
	}
	for i, bn := range bns {
		s := ck.BNStats[i]
		if len(s.RunningMean) != bn.RunningMean.Len() || len(s.RunningVar) != bn.RunningVar.Len() {
			return fmt.Errorf("serialize: batch-norm %q statistics length mismatch", s.Name)
		}
		copy(bn.RunningMean.Data(), s.RunningMean)
		copy(bn.RunningVar.Data(), s.RunningVar)
	}
	return nil
}

// SaveFile writes a checkpoint to path (created or truncated).
func SaveFile(path string, model nn.Layer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	defer f.Close()
	if err := Save(f, model); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serialize: close %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a checkpoint from path into the model.
func LoadFile(path string, model nn.Layer) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	defer f.Close()
	return Load(f, model)
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
