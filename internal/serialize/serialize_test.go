package serialize

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"gofi/internal/data"
	"gofi/internal/models"
	"gofi/internal/nn"
	"gofi/internal/tensor"
	"gofi/internal/train"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rngA := rand.New(rand.NewSource(1))
	a, err := models.Build("resnet18", rngA, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Give a non-trivial state: a couple of training steps populate
	// weights and batch-norm running statistics.
	ds, _ := data.NewClassification(data.ClassificationConfig{Classes: 4, Channels: 3, Size: 16, Noise: 0.2, Seed: 2})
	if _, err := train.Loop(a, ds, train.Config{Epochs: 1, BatchSize: 8, TrainSize: 32, LR: 0.01}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}

	b, err := models.Build("resnet18", rand.New(rand.NewSource(99)), 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandUniform(rand.New(rand.NewSource(3)), -1, 1, 1, 3, 16, 16)
	if nn.Run(a, x).Equal(nn.Run(b, x)) {
		t.Fatal("fresh model should differ before load")
	}
	if err := Load(&buf, b); err != nil {
		t.Fatal(err)
	}
	if !nn.Run(a, x).Equal(nn.Run(b, x)) {
		t.Fatal("loaded model must reproduce the saved model exactly (incl. BN stats)")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	a, _ := models.Build("alexnet", rand.New(rand.NewSource(4)), 4, 16)
	if err := SaveFile(path, a); err != nil {
		t.Fatal(err)
	}
	b, _ := models.Build("alexnet", rand.New(rand.NewSource(5)), 4, 16)
	if err := LoadFile(path, b); err != nil {
		t.Fatal(err)
	}
	x := tensor.RandUniform(rand.New(rand.NewSource(6)), -1, 1, 1, 3, 16, 16)
	if !nn.Run(a, x).Equal(nn.Run(b, x)) {
		t.Fatal("file round trip mismatch")
	}
	if err := LoadFile(filepath.Join(dir, "missing.ckpt"), b); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadArchitectureMismatch(t *testing.T) {
	var buf bytes.Buffer
	a, _ := models.Build("alexnet", rand.New(rand.NewSource(7)), 4, 16)
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}
	// Different architecture: parameter count differs.
	b, _ := models.Build("squeezenet", rand.New(rand.NewSource(8)), 4, 16)
	if err := Load(&buf, b); err == nil {
		t.Fatal("architecture mismatch must error")
	}
}

func TestLoadShapeMismatch(t *testing.T) {
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(9))
	a := nn.NewSequential("n", nn.NewLinear("fc", rng, 4, 2, true))
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}
	b := nn.NewSequential("n", nn.NewLinear("fc", rng, 8, 2, true))
	if err := Load(&buf, b); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestLoadNameMismatch(t *testing.T) {
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(10))
	a := nn.NewSequential("n", nn.NewLinear("fc", rng, 4, 2, true))
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}
	b := nn.NewSequential("n", nn.NewLinear("head", rng, 4, 2, true))
	if err := Load(&buf, b); err == nil {
		t.Fatal("name mismatch must error")
	}
}

func TestLoadGarbage(t *testing.T) {
	b, _ := models.Build("alexnet", rand.New(rand.NewSource(11)), 4, 16)
	if err := Load(bytes.NewBufferString("not a checkpoint"), b); err == nil {
		t.Fatal("garbage input must error")
	}
}
