package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"gofi/internal/campaign"
	"gofi/internal/campaign/stats"
	"gofi/internal/experiments"
	"gofi/internal/obs"
	"gofi/internal/serialize"
)

// Campaign is one submitted campaign: the shard coordinator, its durable
// state (checkpoint + record log), and the fan-out to stream clients.
//
// The coordinator owns the campaign's single fold. Shards execute
// disjoint trial-index ranges concurrently and report records over one
// channel; the coordinator buffers out-of-order arrivals and advances a
// contiguous frontier, folding each record — in strict global index
// order — into the aggregate, the stopping watcher and the record log.
// The fold therefore performs exactly the float additions a
// single-machine run performs, which is the whole byte-identity
// argument; shard count, worker count and schedule only change when
// records arrive, never what is folded or in what order.
type Campaign struct {
	ID string

	srv *Server

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on every fold advance and state change
	spec     Spec
	state    string
	errMsg   string
	env        *experiments.CampaignEnv
	agg        campaign.Aggregate
	watcher    *stats.Sequential // nil without a stop rule
	next       int               // fold frontier: trials [0, next) are folded
	stopAt     int               // global stop index, -1 until the rule fires
	cancel     context.CancelFunc
	runDone    chan struct{} // closed when the run goroutine settles
	wantCancel bool          // Cancel (vs Pause) requested the interrupt
	reg        *obs.Registry // per-campaign engine metrics
	logCount   int           // records currently in the log file
}

func newCampaign(srv *Server, id string, sp Spec) *Campaign {
	c := &Campaign{
		ID:     id,
		srv:    srv,
		spec:   sp,
		state:  StatePending,
		stopAt: -1,
		reg:    obs.NewRegistry(),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// ckptPath and logPath are the campaign's two durable artifacts: the
// atomic checkpoint and the append-only index-ordered record log.
func (c *Campaign) ckptPath() string { return filepath.Join(c.srv.cfg.Dir, c.ID+".ckpt") }
func (c *Campaign) logPath() string  { return filepath.Join(c.srv.cfg.Dir, c.ID+".log.jsonl") }

// Status renders the campaign's wire status.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID:    c.ID,
		State: c.state,
		Spec:  c.spec,
		Agg:   viewOf(c.agg, c.next, c.stopAt),
		Err:   c.errMsg,
	}
	if c.env != nil {
		st.CleanAcc = c.env.CleanAcc
		st.Eligible = len(c.env.Eligible)
	}
	return st
}

// Metrics returns the campaign's private engine-metrics registry.
func (c *Campaign) Metrics() *obs.Registry { return c.reg }

// setState transitions under the lock and wakes streamers.
func (c *Campaign) setState(state string) {
	c.mu.Lock()
	c.state = state
	c.cond.Broadcast()
	c.mu.Unlock()
}

// start launches the campaign's run goroutine. Callers hold no locks.
func (c *Campaign) start(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	done := make(chan struct{})
	c.mu.Lock()
	c.cancel = cancel
	c.runDone = done
	c.mu.Unlock()
	go func() {
		defer close(done)
		c.run(ctx)
	}()
}

// checkpoint persists the fold state at the current frontier. Callers
// hold c.mu.
func (c *Campaign) checkpointLocked() error {
	specRaw, err := json.Marshal(c.spec)
	if err != nil {
		return err
	}
	ck := serialize.CampaignCheckpoint{
		ID:        c.ID,
		State:     c.state,
		Spec:      specRaw,
		NextTrial: c.next,
		StopTrial: c.stopAt,
		Agg:       serialize.NewAggregateState(c.agg),
	}
	if c.watcher != nil {
		st := c.watcher.State()
		ck.Watcher = &st
	}
	if err := serialize.SaveCampaignCheckpoint(c.ckptPath(), ck); err != nil {
		return err
	}
	c.srv.reg.Counter(MetricCheckpointWrites).Inc()
	return nil
}

// loadCheckpoint restores a campaign from its durable artifacts: fold
// state from the checkpoint, and the record log truncated to the
// checkpoint's frontier (the log is written ahead of the checkpoint, so
// after a crash it may hold records the checkpoint does not cover; the
// resumed run recomputes them bit-identically).
func loadCheckpoint(srv *Server, path string) (*Campaign, error) {
	ck, err := serialize.LoadCampaignCheckpoint(path)
	if err != nil {
		return nil, err
	}
	var sp Spec
	if err := json.Unmarshal(ck.Spec, &sp); err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: bad spec: %v", ck.ID, err)
	}
	sp = sp.Canon()
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("serve: checkpoint %s: %w", ck.ID, err)
	}
	c := newCampaign(srv, ck.ID, sp)
	c.next = ck.NextTrial
	c.stopAt = ck.StopTrial
	c.agg = ck.Agg.Aggregate()
	if ck.Watcher != nil {
		c.watcher = stats.NewSequentialFromState(*ck.Watcher)
	}
	if terminalState(ck.State) {
		c.state = ck.State
	} else {
		// The server died (or paused) mid-run; the campaign resumes on
		// request from exactly the checkpointed frontier.
		c.state = StatePaused
	}
	if err := c.truncateLog(); err != nil {
		return nil, err
	}
	return c, nil
}

// truncateLog cuts the record log back to the checkpoint frontier.
func (c *Campaign) truncateLog() error {
	f, err := os.Open(c.logPath())
	if err != nil {
		if os.IsNotExist(err) {
			if c.next > 0 && c.state != StateDone {
				return fmt.Errorf("serve: campaign %s: checkpoint at trial %d but no record log", c.ID, c.next)
			}
			c.logCount = 0
			return nil
		}
		return err
	}
	defer f.Close()
	var off int64
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for lines < c.next && sc.Scan() {
		off += int64(len(sc.Bytes())) + 1
		lines++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines < c.next {
		return fmt.Errorf("serve: campaign %s: record log holds %d trials, checkpoint expects %d", c.ID, lines, c.next)
	}
	c.logCount = lines
	return os.Truncate(c.logPath(), off)
}

// run executes (or resumes) the campaign to completion, pause or
// failure. It is the only goroutine that mutates the fold state while
// the campaign runs.
func (c *Campaign) run(ctx context.Context) {
	c.mu.Lock()
	resumeAt := c.next
	sp := c.spec
	alreadyStopped := c.stopAt >= 0
	c.mu.Unlock()

	if alreadyStopped || resumeAt >= sp.Trials {
		// Nothing left to execute (resumed past the end or past a fired
		// stop rule); settle the terminal state and checkpoint it.
		c.finish(nil)
		return
	}

	// Phase 1: fixture. Training is the expensive part and is shared
	// across campaigns with the same fixture key via the server cache.
	c.setState(StateTraining)
	env, err := c.srv.envFor(ctx, sp)
	if err != nil {
		c.fail(err)
		return
	}
	c.mu.Lock()
	c.env = env
	// The stopping rule comes from the campaign's own spec, not the
	// environment: fixtures are cached across campaigns that differ only
	// in run shape (trials, sharding, stopping), so env.Cfg's stop fields
	// belong to whichever campaign trained the fixture first.
	if c.watcher == nil && sp.StopCI > 0 {
		c.watcher = stats.NewSequential(stats.StopRule{
			HalfWidth:  sp.StopCI,
			Confidence: sp.StopConf,
			MinTrials:  sp.StopMin,
		})
	}
	c.mu.Unlock()

	// Phase 2: open the record log for append and launch the shard legs.
	logf, err := os.OpenFile(c.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		c.fail(err)
		return
	}
	defer logf.Close()
	logw := bufio.NewWriter(logf)
	logEnc := json.NewEncoder(logw)

	c.setState(StateRunning)
	shardCtx, stopShards := context.WithCancel(ctx)
	defer stopShards()

	ranges := campaign.SplitTrials(resumeAt, sp.Trials, sp.Shards)
	records := make(chan campaign.TrialRecord, 4*sp.Workers*len(ranges))
	shardErrs := make(chan error, len(ranges))
	var wg sync.WaitGroup
	for _, r := range ranges {
		wg.Add(1)
		go func(r campaign.Range) {
			defer wg.Done()
			// The slot semaphore bounds how many engine legs run at once
			// across ALL campaigns on this server.
			select {
			case c.srv.slots <- struct{}{}:
				defer func() { <-c.srv.slots }()
			case <-shardCtx.Done():
				shardErrs <- shardCtx.Err()
				return
			}
			c.srv.reg.Counter(MetricShardsLaunched).Inc()
			_, err := env.Run(shardCtx, experiments.ShardRun{
				Offset:  r.Lo,
				Trials:  r.Len(),
				Workers: sp.Workers,
				Metrics: c.reg,
				Sinks: []campaign.TrialSink{campaign.SinkFunc(func(rec campaign.TrialRecord) error {
					select {
					case records <- rec:
						return nil
					case <-shardCtx.Done():
						return shardCtx.Err()
					}
				})},
			})
			shardErrs <- err
		}(r)
	}
	go func() { wg.Wait(); close(records) }()

	// Phase 3: the fold. Buffer out-of-order completions, advance the
	// contiguous frontier, append each folded record to the log and feed
	// the stopping watcher — all in strict global index order.
	ckEvery := c.srv.cfg.CheckpointEvery
	buffered := make(map[int]campaign.TrialRecord, 4*sp.Workers)
	folded := 0
	for rec := range records {
		c.mu.Lock()
		if c.stopAt >= 0 {
			c.mu.Unlock()
			continue // rule fired; drain computed-but-discarded trials
		}
		// Worker attribution depends on work-stealing timing; the log and
		// stream are part of the byte-identity contract, so zero it.
		rec.Worker = 0
		buffered[rec.Trial] = rec
		for {
			r, ok := buffered[c.next]
			if !ok {
				break
			}
			delete(buffered, c.next)
			if err := logEnc.Encode(r); err != nil {
				c.mu.Unlock()
				c.fail(err)
				return
			}
			c.logCount++
			c.agg.AddRecord(r)
			c.srv.reg.Counter(MetricRecordsFolded).Inc()
			if c.watcher != nil {
				c.watcher.Observe(c.next, r.Err == "" && r.Outcome.Top1Changed, r.Err != "")
				if c.watcher.ShouldStop() {
					c.stopAt = c.next
					c.next++
					stopShards()
					break
				}
			}
			c.next++
			folded++
			if ckEvery > 0 && folded%ckEvery == 0 {
				if err := logw.Flush(); err != nil {
					c.mu.Unlock()
					c.fail(err)
					return
				}
				if err := c.checkpointLocked(); err != nil {
					c.mu.Unlock()
					c.fail(err)
					return
				}
			}
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	}

	var firstErr error
	for range ranges {
		if err := <-shardErrs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := logw.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	c.mu.Lock()
	stopped := c.stopAt >= 0
	c.mu.Unlock()
	if stopped {
		// The stop rule cancelling its own shards is not a failure.
		firstErr = nil
	}
	c.finish(firstErr)
}

// finish settles the campaign's terminal (or paused) state and writes
// the final checkpoint.
func (c *Campaign) finish(runErr error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case runErr == nil:
		c.state = StateDone
		c.srv.reg.Counter(MetricCampaignsDone).Inc()
	case errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded):
		// Interrupted, not broken: pause or cancelled, as requested.
		if c.wantCancel {
			c.state = StateCancelled
			c.srv.reg.Counter(MetricCampaignsCancelled).Inc()
		} else {
			c.state = StatePaused
		}
	default:
		c.state = StateFailed
		c.errMsg = runErr.Error()
		c.srv.reg.Counter(MetricCampaignsFailed).Inc()
	}
	if err := c.checkpointLocked(); err != nil && c.state != StateFailed {
		c.state = StateFailed
		c.errMsg = err.Error()
	}
	c.cond.Broadcast()
}

// Pause checkpoints the campaign and halts its shards; a paused campaign
// resumes from exactly its frontier. No-op in any non-running state.
func (c *Campaign) Pause() Status {
	c.mu.Lock()
	cancel, done := c.cancel, c.runDone
	active := c.state == StateRunning || c.state == StateTraining || c.state == StatePending
	c.mu.Unlock()
	if active && cancel != nil {
		cancel()
		<-done
	}
	return c.Status()
}

// Cancel terminally stops the campaign (checkpoint still written, but
// the state is not resumable).
func (c *Campaign) Cancel() Status {
	c.mu.Lock()
	c.wantCancel = true
	cancel, done := c.cancel, c.runDone
	active := c.state == StateRunning || c.state == StateTraining || c.state == StatePending
	if !active {
		// Already settled: a terminal state stays; paused flips to
		// cancelled (it will never run again).
		if c.state == StatePaused {
			c.state = StateCancelled
			c.checkpointLocked()
			c.cond.Broadcast()
		}
		c.mu.Unlock()
		return c.Status()
	}
	c.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	return c.Status()
}

// Resume relaunches a paused campaign from its checkpointed frontier.
func (c *Campaign) Resume(parent context.Context) (Status, error) {
	c.mu.Lock()
	if c.state != StatePaused {
		state := c.state
		c.mu.Unlock()
		return c.Status(), fmt.Errorf("serve: campaign %s is %s, not paused", c.ID, state)
	}
	c.state = StatePending
	c.mu.Unlock()
	c.start(parent)
	return c.Status(), nil
}

// fail settles a non-context error (fixture build, log I/O).
func (c *Campaign) fail(err error) { c.finish(err) }
