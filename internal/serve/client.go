package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a thin wrapper over the server's HTTP API, used by the
// gofi-campaign -submit mode and the gofi-serve smoke tooling.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(parts ...string) string {
	return strings.TrimSuffix(c.Base, "/") + "/" + strings.Join(parts, "/")
}

// do issues one request and decodes the JSON response into out,
// converting non-2xx responses into errors carrying the server's
// message.
func (c *Client) do(ctx context.Context, method, url string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("serve: %s %s: %s", method, url, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a spec and returns the accepted campaign's status.
func (c *Client) Submit(ctx context.Context, sp Spec) (Status, error) {
	if sp.V == 0 {
		sp.V = WireVersion
	}
	raw, err := json.Marshal(sp)
	if err != nil {
		return Status{}, err
	}
	var st Status
	err = c.do(ctx, http.MethodPost, c.url("v1", "campaigns"), bytes.NewReader(raw), &st)
	return st, err
}

// Status fetches one campaign's status.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, c.url("v1", "campaigns", id), nil, &st)
	return st, err
}

// List fetches every campaign's status.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var out []Status
	err := c.do(ctx, http.MethodGet, c.url("v1", "campaigns"), nil, &out)
	return out, err
}

// Pause, Resume and Cancel drive the campaign lifecycle.
func (c *Client) Pause(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, c.url("v1", "campaigns", id, "pause"), nil, &st)
	return st, err
}

func (c *Client) Resume(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, c.url("v1", "campaigns", id, "resume"), nil, &st)
	return st, err
}

func (c *Client) Cancel(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, c.url("v1", "campaigns", id, "cancel"), nil, &st)
	return st, err
}

// Stream consumes a campaign's chunked-JSONL event stream from trial
// index `from`, calling fn for each event until the stream ends (the
// campaign settled) or fn returns an error.
func (c *Client) Stream(ctx context.Context, id string, from int, fn func(Event) error) error {
	url := c.url("v1", "campaigns", id, "stream") + fmt.Sprintf("?from=%d", from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("serve: stream %s: %s", id, resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		ev, err := DecodeEvent(sc.Bytes())
		if err != nil {
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Wait polls until the campaign reaches a terminal state (or paused,
// which also stops progressing) and returns its final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if terminalState(st.State) || st.State == StatePaused {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
