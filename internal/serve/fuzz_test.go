package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzSpecDecode hardens the submission path: arbitrary bytes from the
// network must decode to a valid, runnable spec or return a named error —
// never panic, and never let an unknown wire version through.
func FuzzSpecDecode(f *testing.F) {
	f.Add(`{"v":1}`)
	f.Add(`{"v":1,"model":"alexnet","classes":4,"size":16,"trials":60}`)
	f.Add(`{"v":1,"error":"bitflip","scope":"weight","dtype":"fp16","schedule":"pack"}`)
	f.Add(`{"v":1,"backend":"int8","dtype":"int8","act_zp":true,"shards":4,"workers":8}`)
	f.Add(`{"v":1,"stop_ci":0.01,"stop_conf":0.99,"stop_min":50,"skip_errors":true}`)
	f.Add(`{"v":2}`)
	f.Add(`{"v":-1}`)
	f.Add(`{}`)
	f.Add(`{"v":1,"unknown_field":true}`)
	f.Add(`{"v":1,"trials":-5}`)
	f.Add(`{"v":1,"noise":1e308}`)
	f.Add(`[1,2,3]`)
	f.Add(`"spec"`)
	f.Add(`{"v":1,"model":"` + strings.Repeat("x", 300) + `"}`)
	f.Add("\xff\xfe{")
	f.Fuzz(func(t *testing.T, raw string) {
		sp, err := DecodeSpec(strings.NewReader(raw))
		if err != nil {
			// Every rejection carries one of the named sentinels.
			if !errors.Is(err, ErrSpec) && !errors.Is(err, ErrWireVersion) {
				t.Fatalf("unnamed decode error: %v", err)
			}
			return
		}
		// Accepted specs are canonical, validated, runnable and stable
		// under a wire round trip.
		if sp.V != WireVersion {
			t.Fatalf("accepted spec with version %d", sp.V)
		}
		if sp != sp.Canon() {
			t.Fatalf("accepted spec not canonical: %+v", sp)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v", err)
		}
		if _, err := sp.Config(); err != nil {
			t.Fatalf("accepted spec has no runnable config: %v", err)
		}
		if sp.envKey() == "" {
			t.Fatal("accepted spec has empty fixture key")
		}
		enc, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		again, err := DecodeSpec(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encoded spec rejected: %v", err)
		}
		if again != sp {
			t.Fatalf("wire round trip drifted:\n got %+v\nwant %+v", again, sp)
		}
	})
}

// FuzzEventDecode hardens the client side of the stream: arbitrary lines
// must decode or error, never panic, and decoded events re-encode to an
// equivalent line.
func FuzzEventDecode(f *testing.F) {
	f.Add(`{"type":"hello","campaign":"c000001","state":"running"}`)
	f.Add(`{"type":"trial","trial":{"trial":3,"worker":0,"sample":17,"outcome":{"top1_changed":true,"top1_out_of_top5":false,"confidence_drop":0.25,"non_finite":false}}}`)
	f.Add(`{"type":"agg","agg":{"trials":64,"top1_mis":12,"rate":0.1875,"lo":0.1,"hi":0.3,"next_trial":64,"stop_trial":-1}}`)
	f.Add(`{"type":"done","state":"done"}`)
	f.Add(`{"type":"error","error":"boom"}`)
	f.Add(`{"type":42}`)
	f.Add(`null`)
	f.Add(``)
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, raw string) {
		ev, err := DecodeEvent([]byte(raw))
		if err != nil {
			return
		}
		enc, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("decoded event does not re-encode: %v", err)
		}
		again, err := DecodeEvent(enc)
		if err != nil {
			t.Fatalf("re-encoded event rejected: %v", err)
		}
		// Pointers preclude direct equality; compare the re-encodings.
		enc2, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("event round trip drifted: %s vs %s", enc, enc2)
		}
	})
}
