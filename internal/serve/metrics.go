package serve

// Server-level metric names, published on the server's obs.Registry
// (GET /v1/metrics). Each campaign additionally owns a private registry
// with the engine's campaign.* metrics (GET /v1/campaigns/{id}/metrics).
const (
	// MetricCampaignsSubmitted counts accepted submissions.
	MetricCampaignsSubmitted = "serve.campaigns.submitted"
	// MetricCampaignsDone / Failed / Cancelled count terminal outcomes.
	MetricCampaignsDone      = "serve.campaigns.done"
	MetricCampaignsFailed    = "serve.campaigns.failed"
	MetricCampaignsCancelled = "serve.campaigns.cancelled"
	// MetricShardsLaunched counts engine legs started (a resumed
	// campaign launches a fresh set).
	MetricShardsLaunched = "serve.shards.launched"
	// MetricRecordsFolded counts trial records folded at the frontier.
	MetricRecordsFolded = "serve.records.folded"
	// MetricCheckpointWrites counts durable checkpoint saves.
	MetricCheckpointWrites = "serve.checkpoint.writes"
	// MetricStreamClients gauges currently-connected stream readers.
	MetricStreamClients = "serve.stream.clients"
	// MetricHTTPRequests counts API requests served.
	MetricHTTPRequests = "serve.http.requests"
	// MetricEnvCacheHits counts fixture-cache hits (campaigns that
	// skipped training because an equivalent fixture was already built).
	MetricEnvCacheHits = "serve.envcache.hits"
)
