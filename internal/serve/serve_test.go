package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"gofi/internal/campaign"
	"gofi/internal/experiments"
	"gofi/internal/serialize"
)

// skipIfShort gates the training-heavy end-to-end tests out of -short
// runs; the wire-format unit tests below them always run.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("training-heavy end-to-end test; skipped with -short")
	}
}

// baseSpec is the cheap shared fixture: the smallest trainable model the
// experiments suite itself uses (alexnet at 4 classes / 16 px).
func baseSpec() Spec {
	return Spec{
		V:          WireVersion,
		Model:      "alexnet",
		Classes:    4,
		Size:       16,
		Epochs:     6,
		Noise:      0.2,
		Seed:       42,
		Trials:     60,
		Error:      "bitflip",
		Scope:      "neuron",
		Workers:    2,
		SkipErrors: true,
	}
}

// stopSpec attaches the PR 7 sequential stopping rule to the shared
// fixture; the floor keeps the rule from firing before the kill/resume
// test has interrupted the campaign, and the ±10pp half-width makes it
// certain to fire well inside the 300-trial budget.
func stopSpec() Spec {
	sp := baseSpec()
	sp.Trials = 300
	sp.StopCI = 0.1
	sp.StopConf = 0.95
	sp.StopMin = 40
	return sp
}

// localRef lazily runs a spec through the local single-machine path
// (experiments.RunGenericCampaign — exactly what the CLI executes) and
// caches the index-ordered record stream plus the final result. Every
// serve test compares against this: the service's whole contract is
// byte-identity with the local run.
type localRef struct {
	once sync.Once
	recs []campaign.TrialRecord
	res  experiments.GenericCampaignResult
	err  error
}

var (
	refBase localRef
	refStop localRef
)

func (ref *localRef) run(t *testing.T, sp Spec) ([]campaign.TrialRecord, experiments.GenericCampaignResult) {
	t.Helper()
	ref.once.Do(func() {
		cfg, err := sp.Config()
		if err != nil {
			ref.err = err
			return
		}
		var mu sync.Mutex
		cfg.Sinks = []campaign.TrialSink{campaign.SinkFunc(func(rec campaign.TrialRecord) error {
			rec.Worker = 0 // attribution is timing-dependent
			mu.Lock()
			ref.recs = append(ref.recs, rec)
			mu.Unlock()
			return nil
		})}
		ref.res, ref.err = experiments.RunGenericCampaign(context.Background(), cfg)
		sort.Slice(ref.recs, func(i, j int) bool { return ref.recs[i].Trial < ref.recs[j].Trial })
	})
	if ref.err != nil {
		t.Fatalf("local reference run: %v", ref.err)
	}
	return ref.recs, ref.res
}

// collectStream drains a campaign's full event stream, returning the
// trial records in arrival order and the terminal done event.
func collectStream(t *testing.T, cl *Client, id string, from int) ([]campaign.TrialRecord, Event) {
	t.Helper()
	var recs []campaign.TrialRecord
	var done Event
	err := cl.Stream(context.Background(), id, from, func(ev Event) error {
		switch ev.Type {
		case "trial":
			recs = append(recs, *ev.Trial)
		case "done":
			done = ev
		case "error":
			return fmt.Errorf("stream error event: %s", ev.Err)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream %s from %d: %v", id, from, err)
	}
	if done.Type != "done" {
		t.Fatalf("stream %s ended without a done event", id)
	}
	return recs, done
}

func sameRecords(t *testing.T, label string, got, want []campaign.TrialRecord) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d differs:\n got %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// TestServeShardedMatchesLocal is the service-layer byte-identity proof:
// a campaign submitted over HTTP and split across 3 shard legs must
// stream exactly the records — and settle on exactly the aggregate — of
// the single-machine CLI path. It also pins the stop-rule wiring: a
// sharded campaign with -stop-ci semantics halts on the same global
// trial index as the local engine run, via the coordinator's ordered
// frontier.
func TestServeShardedMatchesLocal(t *testing.T) {
	skipIfShort(t)
	srv, err := New(Config{Dir: t.TempDir(), CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl := &Client{Base: hs.URL}
	ctx := context.Background()

	sp := baseSpec()
	sp.Shards = 3
	st, err := cl.Submit(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || terminalState(st.State) {
		t.Fatalf("submit returned %+v", st)
	}

	// Stream from trial 0 while the campaign runs: live tail and log
	// replay must be indistinguishable.
	got, done := collectStream(t, cl, st.ID, 0)
	wantRecs, wantRes := refBase.run(t, baseSpec())
	sameRecords(t, "sharded stream vs local run", got, wantRecs)
	if done.State != StateDone {
		t.Fatalf("done event state = %q, want %q", done.State, StateDone)
	}
	wantView := viewOf(wantRes.Aggregate, len(wantRecs), -1)
	if done.Agg == nil || *done.Agg != wantView {
		t.Fatalf("done aggregate drifted:\n got %+v\nwant %+v", done.Agg, wantView)
	}

	// Status agrees with the stream, and carries the fixture description.
	fin, err := cl.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Agg != wantView {
		t.Fatalf("final status drifted: %+v", fin)
	}
	if fin.CleanAcc != wantRes.CleanAcc || fin.Eligible != wantRes.EligibleCount {
		t.Fatalf("fixture description drifted: acc %v/%v eligible %v/%v",
			fin.CleanAcc, wantRes.CleanAcc, fin.Eligible, wantRes.EligibleCount)
	}

	// A late subscriber replaying from the middle gets exactly the suffix.
	mid := len(wantRecs) / 2
	suffix, _ := collectStream(t, cl, st.ID, mid)
	sameRecords(t, "mid-stream replay", suffix, wantRecs[mid:])

	// Second submission: same fixture key (only sharding and stopping
	// differ), so the trained environment is shared — and the sharded
	// stop index must pin to the local -stop-ci run's.
	hits := srv.Metrics().Counter(MetricEnvCacheHits).Value()
	sp2 := stopSpec()
	sp2.Shards = 2
	st2, err := cl.Submit(ctx, sp2)
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := cl.Wait(ctx, st2.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin2.State != StateDone {
		t.Fatalf("stop campaign settled %q (%s), want done", fin2.State, fin2.Err)
	}
	if got := srv.Metrics().Counter(MetricEnvCacheHits).Value(); got <= hits {
		t.Fatalf("second submission did not hit the fixture cache (hits %d -> %d)", hits, got)
	}
	stopRecs, stopRes := refStop.run(t, stopSpec())
	if stopRes.Stop == nil || stopRes.Stop.Trial < 0 {
		t.Fatalf("local stop rule did not fire: %+v", stopRes.Stop)
	}
	stopAt := stopRes.Stop.Trial
	if fin2.Agg.StopTrial != stopAt {
		t.Fatalf("sharded stop index %d, local -stop-ci run stopped at %d", fin2.Agg.StopTrial, stopAt)
	}
	if fin2.Agg.NextTrial != stopAt+1 {
		t.Fatalf("fold frontier %d, want %d (stop index + 1)", fin2.Agg.NextTrial, stopAt+1)
	}
	if want := viewOf(stopRes.Aggregate, stopAt+1, stopAt); fin2.Agg != want {
		t.Fatalf("stopped aggregate drifted:\n got %+v\nwant %+v", fin2.Agg, want)
	}
	gotStop, _ := collectStream(t, cl, st2.ID, 0)
	sameRecords(t, "stopped stream vs local run", gotStop, stopRecs)

	// The campaign list includes both, ID-ordered.
	sts, err := cl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 || sts[0].ID >= sts[1].ID {
		t.Fatalf("list = %+v", sts)
	}
}

// TestServeKillResumeDeterminism is the durability proof: a campaign
// paused mid-run, its server discarded, its record log dirtied the way a
// crash would (records past the checkpointed frontier), then resumed by
// a brand-new server over the same state directory must finish with the
// identical aggregate, stop index, record stream and durable log bytes
// as the uninterrupted local run.
func TestServeKillResumeDeterminism(t *testing.T) {
	skipIfShort(t)
	dir := t.TempDir()
	srvA, err := New(Config{Dir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp := stopSpec()
	sp.Shards = 2
	c := srvA.Submit(sp)

	// Wait on the coordinator's own condvar until the fold frontier has
	// advanced, then pause immediately. The stop rule's 40-trial floor
	// keeps the campaign mid-flight (trials are fast; an HTTP pause's
	// round trip would already lose the race, so this one is in-process).
	c.mu.Lock()
	for c.next < 2 && !terminalState(c.state) {
		c.cond.Wait()
	}
	c.mu.Unlock()
	st := c.Pause()
	if st.State != StatePaused {
		t.Fatalf("campaign settled %q before the pause landed", st.State)
	}
	pausedAt := st.Agg.NextTrial
	if pausedAt < 2 {
		t.Fatalf("paused at frontier %d, want >= 2", pausedAt)
	}
	srvA.Close()

	// Crash simulation: the log is written ahead of the checkpoint, so a
	// killed node can leave records past the checkpointed frontier.
	// Append a stale extra line; recovery must truncate it and recompute.
	logPath := filepath.Join(dir, c.ID+".log.jsonl")
	buf, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(bytes.TrimSuffix(buf, []byte("\n")), []byte("\n"))
	stale := append(append([]byte{}, buf...), lines[len(lines)-1]...)
	stale = append(stale, '\n')
	if err := os.WriteFile(logPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh server over the same directory restores the campaign
	// paused at exactly the checkpointed frontier.
	srvB, err := New(Config{Dir: dir, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	hs := httptest.NewServer(srvB.Handler())
	defer hs.Close()
	cl := &Client{Base: hs.URL}
	ctx := context.Background()

	sts, err := cl.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 || sts[0].ID != c.ID || sts[0].State != StatePaused {
		t.Fatalf("restored list = %+v", sts)
	}
	if sts[0].Agg.NextTrial != pausedAt {
		t.Fatalf("restored frontier %d, want %d", sts[0].Agg.NextTrial, pausedAt)
	}

	if _, err := cl.Resume(ctx, c.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, c.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("resumed campaign settled %q (%s), want done", fin.State, fin.Err)
	}

	wantRecs, wantRes := refStop.run(t, stopSpec())
	stopAt := wantRes.Stop.Trial
	if fin.Agg.StopTrial != stopAt {
		t.Fatalf("resumed stop index %d, uninterrupted run stopped at %d", fin.Agg.StopTrial, stopAt)
	}
	if want := viewOf(wantRes.Aggregate, stopAt+1, stopAt); fin.Agg != want {
		t.Fatalf("resumed aggregate drifted:\n got %+v\nwant %+v", fin.Agg, want)
	}

	// The stream replays the whole campaign — across the pause boundary —
	// identically to the uninterrupted run.
	got, done := collectStream(t, cl, c.ID, 0)
	sameRecords(t, "resumed stream vs uninterrupted run", got, wantRecs)
	if done.State != StateDone {
		t.Fatalf("done event state = %q", done.State)
	}

	// The durable log holds exactly the reference encoding: the stale
	// crash residue is gone and the recomputed lines are bit-identical.
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	for _, rec := range wantRecs {
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	gotLog, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotLog, want.Bytes()) {
		t.Fatalf("durable log diverged from reference encoding (%d vs %d bytes)", len(gotLog), want.Len())
	}

	// Resuming a done campaign is a conflict, not a rerun.
	if _, err := cl.Resume(ctx, c.ID); err == nil {
		t.Fatal("resume of a done campaign succeeded")
	}
}

// TestServeHTTPSurface covers the cheap API paths that need no trained
// fixture: health, metrics, validation failures, 404s and the
// cancel-while-training transition.
func TestServeHTTPSurface(t *testing.T) {
	srv, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl := &Client{Base: hs.URL}
	ctx := context.Background()

	for _, path := range []string{"/healthz", "/v1/metrics", "/v1/campaigns"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}

	// Invalid specs are rejected with the wrapped reason before any
	// training starts.
	bad := []string{
		`{`,                         // syntax
		`{"v":99}`,                  // version
		`{"v":1,"error":"martian"}`, // unknown error model
		`{"v":1,"typo_field":3}`,    // unknown field
		`{"v":1,"stop_ci":0.7}`,     // out-of-range rule
	}
	for _, body := range bad {
		resp, err := http.Post(hs.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || err != nil || e.Error == "" {
			t.Fatalf("POST %s = %d (%q)", body, resp.StatusCode, e.Error)
		}
	}
	if _, err := cl.Submit(ctx, Spec{V: 99}); err == nil {
		t.Fatal("client accepted a bad wire version")
	}

	// Unknown campaign IDs 404 on every campaign-scoped route.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/campaigns/c999999"},
		{http.MethodGet, "/v1/campaigns/c999999/stream"},
		{http.MethodGet, "/v1/campaigns/c999999/metrics"},
		{http.MethodPost, "/v1/campaigns/c999999/pause"},
		{http.MethodPost, "/v1/campaigns/c999999/resume"},
		{http.MethodPost, "/v1/campaigns/c999999/cancel"},
	} {
		req, _ := http.NewRequest(probe.method, hs.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s = %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}

	// Submit a real spec and cancel it immediately: training is
	// interrupted and the campaign settles cancelled — terminally.
	st, err := cl.Submit(ctx, baseSpec())
	if err != nil {
		t.Fatal(err)
	}
	cst, err := cl.Cancel(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cst.State != StateCancelled {
		t.Fatalf("cancelled campaign is %q", cst.State)
	}
	if _, err := cl.Resume(ctx, st.ID); err == nil {
		t.Fatal("resume of a cancelled campaign succeeded")
	}
	// Pausing a settled campaign is a no-op, not an error.
	if pst, err := cl.Pause(ctx, st.ID); err != nil || pst.State != StateCancelled {
		t.Fatalf("pause of cancelled campaign: %+v, %v", pst, err)
	}
	// The stream of a cancelled campaign settles with a done event
	// carrying the terminal state.
	_, done := collectStream(t, cl, st.ID, 0)
	if done.State != StateCancelled {
		t.Fatalf("stream done state = %q, want cancelled", done.State)
	}

	// Malformed ?from= is a 400.
	resp, err := http.Get(hs.URL + "/v1/campaigns/" + st.ID + "/stream?from=minus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from = %d, want 400", resp.StatusCode)
	}

	// Per-campaign metrics endpoint serves the private registry.
	resp, err = http.Get(hs.URL + "/v1/campaigns/" + st.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign metrics = %d", resp.StatusCode)
	}

	// A server refusing to start without a state directory.
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty state directory")
	}

	// A spec naming a model the registry cannot build settles failed —
	// with the reason on the status and an error event on the stream —
	// and does not poison the fixture cache for the next submission.
	badSp := baseSpec()
	badSp.Model = "no-such-model"
	stBad, err := cl.Submit(ctx, badSp)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := cl.Wait(ctx, stBad.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed || fin.Err == "" {
		t.Fatalf("bad model settled %+v", fin)
	}
	sawError := false
	err = cl.Stream(ctx, stBad.ID, 0, func(ev Event) error {
		if ev.Type == "error" && ev.Err != "" {
			sawError = true
		}
		return nil
	})
	if err != nil || !sawError {
		t.Fatalf("failed campaign stream: err=%v sawError=%v", err, sawError)
	}
	stBad2, err := cl.Submit(ctx, badSp)
	if err != nil {
		t.Fatal(err)
	}
	if fin2, err := cl.Wait(ctx, stBad2.ID, 0); err != nil || fin2.State != StateFailed {
		t.Fatalf("resubmitted bad model: %+v, %v", fin2, err)
	}
}

// TestServeRecoveryRejectsCorruptState pins the crash-recovery guard
// rails: a state directory whose artifacts cannot reproduce the
// checkpointed frontier must refuse to load rather than resume into a
// diverging campaign.
func TestServeRecoveryRejectsCorruptState(t *testing.T) {
	writeCkpt := func(t *testing.T, dir string, ck serialize.CampaignCheckpoint) {
		t.Helper()
		if err := serialize.SaveCampaignCheckpoint(filepath.Join(dir, ck.ID+".ckpt"), ck); err != nil {
			t.Fatal(err)
		}
	}

	// Checkpoint claims folded trials but the record log is missing.
	dir := t.TempDir()
	writeCkpt(t, dir, serialize.CampaignCheckpoint{
		ID: "c000005", State: StateRunning, Spec: json.RawMessage(`{"v":1}`),
		NextTrial: 10, StopTrial: -1,
	})
	if _, err := New(Config{Dir: dir}); err == nil {
		t.Fatal("loaded a checkpoint with no record log")
	}
	// ... or the log is shorter than the checkpointed frontier.
	if err := os.WriteFile(filepath.Join(dir, "c000005.log.jsonl"), []byte("{}\n{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: dir}); err == nil {
		t.Fatal("loaded a checkpoint whose log is shorter than its frontier")
	}

	// A checkpoint carrying an unrunnable spec refuses to load.
	dir2 := t.TempDir()
	writeCkpt(t, dir2, serialize.CampaignCheckpoint{
		ID: "c000001", State: StateDone, Spec: json.RawMessage(`{"v":9}`),
		NextTrial: 0, StopTrial: -1,
	})
	if _, err := New(Config{Dir: dir2}); err == nil {
		t.Fatal("loaded a checkpoint with an unsupported spec version")
	}

	// Garbage checkpoint bytes refuse to load.
	dir3 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir3, "x.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: dir3}); err == nil {
		t.Fatal("loaded garbage checkpoint bytes")
	}

	// A healthy terminal checkpoint with a non-sequential ID restores
	// fine, and fresh IDs never collide with it.
	dir4 := t.TempDir()
	writeCkpt(t, dir4, serialize.CampaignCheckpoint{
		ID: "adhoc", State: StateDone, Spec: json.RawMessage(`{"v":1}`),
		NextTrial: 0, StopTrial: -1,
	})
	srv, err := New(Config{Dir: dir4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, ok := srv.Get("adhoc"); !ok {
		t.Fatal("restored campaign not listed")
	}
	cheap := baseSpec().Canon()
	cheap.Model = "no-such-model" // fails fast; this only probes ID allocation
	if got := srv.Submit(cheap); got.ID != "c000001" {
		t.Fatalf("fresh ID = %q, want c000001", got.ID)
	}
}
