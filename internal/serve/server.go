package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gofi/internal/campaign"
	"gofi/internal/experiments"
	"gofi/internal/obs"
	"gofi/internal/report"
)

// Config configures a campaign server.
type Config struct {
	// Dir is the durable state directory (checkpoints + record logs).
	// Required.
	Dir string
	// Slots bounds how many shard engine legs run concurrently across
	// all campaigns; 0 means GOMAXPROCS.
	Slots int
	// CheckpointEvery is the fold-frontier checkpoint cadence in trials;
	// 0 means 64, negative disables periodic checkpoints (terminal and
	// pause checkpoints are always written).
	CheckpointEvery int
	// Metrics, when non-nil, is the server-level registry; nil builds a
	// private one.
	Metrics *obs.Registry
}

// Server coordinates campaigns: accepts specs over HTTP, runs their
// shard legs under a global slot budget, owns their durable state, and
// serves status, streams and lifecycle transitions.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	slots chan struct{}

	mu        sync.Mutex
	seq       int
	campaigns map[string]*Campaign
	envs      map[string]*envEntry

	baseCtx    context.Context
	cancelBase context.CancelFunc
}

// envEntry is one fixture-cache slot: the first campaign with a given
// fixture key trains it; others wait on the same entry.
type envEntry struct {
	once sync.Once
	env  *experiments.CampaignEnv
	err  error
}

// New builds a server over the given state directory, loading any
// checkpointed campaigns found there (interrupted ones come back
// paused, resumable from exactly their checkpointed frontier).
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: state directory required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 64
	}
	slots := cfg.Slots
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		slots:      make(chan struct{}, slots),
		campaigns:  make(map[string]*Campaign),
		envs:       make(map[string]*envEntry),
		baseCtx:    ctx,
		cancelBase: cancel,
	}
	paths, err := filepath.Glob(filepath.Join(cfg.Dir, "*.ckpt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	for _, p := range paths {
		c, err := loadCheckpoint(s, p)
		if err != nil {
			return nil, fmt.Errorf("serve: loading %s: %w", p, err)
		}
		s.campaigns[c.ID] = c
		// Keep new IDs clear of restored ones (IDs are c<seq>).
		if n, ok := parseID(c.ID); ok && n > s.seq {
			s.seq = n
		}
	}
	return s, nil
}

func parseID(id string) (int, bool) {
	if !strings.HasPrefix(id, "c") {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	return n, err == nil
}

// Metrics returns the server-level registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Submit accepts a validated spec and starts its campaign.
func (s *Server) Submit(sp Spec) *Campaign {
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("c%06d", s.seq)
	c := newCampaign(s, id, sp)
	s.campaigns[id] = c
	s.mu.Unlock()
	s.reg.Counter(MetricCampaignsSubmitted).Inc()
	c.start(s.baseCtx)
	return c
}

// Get returns a campaign by ID.
func (s *Server) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// List returns all campaigns' statuses, ID-ordered.
func (s *Server) List() []Status {
	s.mu.Lock()
	ids := make([]string, 0, len(s.campaigns))
	for id := range s.campaigns {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if c, ok := s.Get(id); ok {
			out = append(out, c.Status())
		}
	}
	return out
}

// Close pauses every active campaign (each writes its checkpoint) and
// releases the server. Campaigns resume from their frontiers when a new
// server opens the same state directory.
func (s *Server) Close() {
	s.mu.Lock()
	cs := make([]*Campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		cs = append(cs, c)
	}
	s.mu.Unlock()
	for _, c := range cs {
		c.Pause()
	}
	s.cancelBase()
}

// envFor resolves the campaign's prepared environment through the
// fixture cache: campaigns with the same fixture key (model, training
// and fault-model fields; not trial budget, sharding or stopping) share
// one trained fixture, so submitting ten shardings of one experiment
// trains once.
func (s *Server) envFor(ctx context.Context, sp Spec) (*experiments.CampaignEnv, error) {
	key := sp.envKey()
	s.mu.Lock()
	e, ok := s.envs[key]
	if !ok {
		e = &envEntry{}
		s.envs[key] = e
	}
	s.mu.Unlock()
	if ok {
		s.reg.Counter(MetricEnvCacheHits).Inc()
	}
	e.once.Do(func() {
		cfg, err := sp.Config()
		if err != nil {
			e.err = err
			return
		}
		e.env, e.err = experiments.PrepareGenericCampaign(ctx, cfg)
	})
	if e.err != nil {
		// A cancelled training must not poison the cache for the next
		// submission.
		s.mu.Lock()
		if s.envs[key] == e {
			delete(s.envs, key)
		}
		s.mu.Unlock()
	}
	return e.env, e.err
}

// Handler returns the server's HTTP API:
//
//	POST /v1/campaigns              submit a Spec, returns Status (202)
//	GET  /v1/campaigns              list statuses
//	GET  /v1/campaigns/{id}         one status
//	GET  /v1/campaigns/{id}/stream  chunked JSONL event stream (?from=N)
//	GET  /v1/campaigns/{id}/metrics per-campaign engine metrics
//	POST /v1/campaigns/{id}/pause   checkpoint and halt
//	POST /v1/campaigns/{id}/resume  relaunch from the checkpoint
//	POST /v1/campaigns/{id}/cancel  terminally stop
//	GET  /v1/metrics                server metrics snapshot
//	GET  /healthz                   liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /v1/campaigns/{id}", s.withCampaign(func(c *Campaign, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	}))
	mux.HandleFunc("GET /v1/campaigns/{id}/stream", s.withCampaign(s.handleStream))
	mux.HandleFunc("GET /v1/campaigns/{id}/metrics", s.withCampaign(func(c *Campaign, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		c.Metrics().WriteJSON(w)
	}))
	mux.HandleFunc("POST /v1/campaigns/{id}/pause", s.withCampaign(func(c *Campaign, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Pause())
	}))
	mux.HandleFunc("POST /v1/campaigns/{id}/resume", s.withCampaign(func(c *Campaign, w http.ResponseWriter, r *http.Request) {
		st, err := c.Resume(s.baseCtx)
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}))
	mux.HandleFunc("POST /v1/campaigns/{id}/cancel", s.withCampaign(func(c *Campaign, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Cancel())
	}))
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.reg.WriteJSON(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return s.countRequests(mux)
}

func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter(MetricHTTPRequests).Inc()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) withCampaign(fn func(*Campaign, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("serve: no campaign %q", r.PathValue("id")))
			return
		}
		fn(c, w, r)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sp, err := DecodeSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c := s.Submit(sp)
	writeJSON(w, http.StatusAccepted, c.Status())
}

// handleStream writes the campaign's chunked-JSONL event stream: a hello
// event, then every trial record from index `from` onward in strict
// global order (replayed from the durable log, then live as the fold
// advances), interleaved with live Wilson-interval aggregate events, and
// finally a done (or error) event once the campaign settles. The trial
// lines are part of the byte-identity contract: two runs of the same
// spec produce identical sequences regardless of sharding, pausing or
// crashes.
func (s *Server) handleStream(c *Campaign, w http.ResponseWriter, r *http.Request) {
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad from=%q", q))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/jsonl")
	flusher, _ := w.(http.Flusher)
	out := report.NewStreamJSONL(w, flusher)

	clients := s.reg.Gauge(MetricStreamClients)
	clients.Add(1)
	defer clients.Add(-1)

	st := c.Status()
	hello := Event{Type: "hello", Campaign: c.ID, State: st.State, Agg: &st.Agg}
	if out.Write(hello) != nil {
		return
	}

	// The handler folds its own aggregate over the records it streams, so
	// its agg events are consistent with its own cursor even when it
	// started mid-stream.
	const aggEvery = 64
	var agg campaign.Aggregate
	cursor := 0
	err := c.streamRecords(r.Context(), from, func(rec campaign.TrialRecord) error {
		agg.AddRecord(rec)
		cursor = rec.Trial + 1
		if err := out.Write(Event{Type: "trial", Trial: &rec}); err != nil {
			return err
		}
		if (rec.Trial+1-from)%aggEvery == 0 {
			v := viewOf(agg, cursor, -1)
			return out.Write(Event{Type: "agg", Agg: &v})
		}
		return nil
	})
	if err != nil {
		// Client went away or the log failed; nothing more to say on this
		// connection.
		return
	}
	st = c.Status()
	if st.State == StateFailed {
		out.Write(Event{Type: "error", State: st.State, Err: st.Err})
		return
	}
	out.Write(Event{Type: "done", State: st.State, Agg: &st.Agg})
}

// streamRecords calls fn for every folded record with index >= from, in
// strict global index order, blocking for live progress until the
// campaign settles. Records are read back from the durable log — the
// same bytes the fold wrote — so a streamer is oblivious to whether it
// replays history or tails the live fold.
func (c *Campaign) streamRecords(ctx context.Context, from int, fn func(campaign.TrialRecord) error) error {
	next := from
	for {
		c.mu.Lock()
		for c.next <= next && !terminalState(c.state) && c.state != StatePaused && ctx.Err() == nil {
			// Wait for the fold to advance past our cursor. Wake on a
			// context cancel too: a cond has no channel, so poke it from a
			// watcher goroutine.
			waitDone := make(chan struct{})
			go func() {
				select {
				case <-ctx.Done():
					c.mu.Lock()
					c.cond.Broadcast()
					c.mu.Unlock()
				case <-waitDone:
				}
			}()
			c.cond.Wait()
			close(waitDone)
		}
		available := c.next
		settled := terminalState(c.state) || c.state == StatePaused
		c.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		if available > next {
			n, err := c.replayLog(next, available, fn)
			if err != nil {
				return err
			}
			next = n
			continue
		}
		if settled {
			return nil
		}
	}
}

// replayLog reads log records with indices [from, to) and feeds them to
// fn, returning the next unread index.
func (c *Campaign) replayLog(from, to int, fn func(campaign.TrialRecord) error) (int, error) {
	f, err := os.Open(c.logPath())
	if err != nil {
		return from, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	idx := 0
	for idx < to && sc.Scan() {
		if idx >= from {
			var rec campaign.TrialRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				return idx, fmt.Errorf("serve: campaign %s: log line %d: %v", c.ID, idx, err)
			}
			if err := fn(rec); err != nil {
				return idx, err
			}
		}
		idx++
	}
	if err := sc.Err(); err != nil {
		return idx, err
	}
	return idx, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
