// Package serve implements the gofi campaign service: a long-running
// HTTP/JSON server that accepts campaign specifications, shards each
// campaign by trial-index range across a pool of engine workers, merges
// the shards' records back together in global index order, and streams
// per-trial records plus live Wilson-interval aggregates to any number
// of clients over chunked JSONL.
//
// The determinism contract carries over from the engine wholesale:
// every trial's randomness is a pure function of (campaign seed, global
// trial index), and the coordinator folds records in strict index order
// — performing exactly the float additions a single-machine run
// performs — so a campaign's final aggregate, its early-stop index and
// its record stream are byte-identical at ANY shard count, across
// pause/resume cycles, and across server crashes (durable checkpoints
// via internal/serialize make a killed node lose nothing). The test
// wall pins all three against the repo's committed golden fixtures.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"gofi/internal/campaign"
	"gofi/internal/core"
	"gofi/internal/experiments"
	"gofi/internal/scenario"
)

// WireVersion is the campaign-spec wire version this build speaks.
const WireVersion = 1

// ErrWireVersion is wrapped by DecodeSpec errors for specs written under
// an unknown wire version; gate on it with errors.Is.
var ErrWireVersion = errors.New("serve: unsupported wire version")

// ErrSpec is wrapped by spec validation failures.
var ErrSpec = errors.New("serve: invalid campaign spec")

// ErrUnsupportedEstimator is wrapped by validation failures for specs
// requesting the stratified-sampling or fault-space-dedup estimators.
// Their estimates are not plain index-ordered folds, so sharded
// execution cannot yet reproduce them byte-for-byte; the wire format
// rejects them loudly rather than silently running the plain estimator.
var ErrUnsupportedEstimator = errors.New("serve: estimator not supported on the wire")

// Spec is the wire form of a campaign submission. The zero value of
// every optional field means "the gofi-campaign default", so a spec
// submitted with only {"v":1} runs exactly what a bare CLI invocation
// runs. Stratified sampling and fault-space dedup are deliberately not
// supported: their estimators are not plain index-ordered folds, so
// sharded execution cannot yet reproduce them byte-for-byte — Validate
// rejects the Stratify/Dedup fields with ErrUnsupportedEstimator.
type Spec struct {
	// V is the wire version; must equal WireVersion.
	V int `json:"v"`
	// Model, Classes, Size, Epochs, Noise and Seed pin the trained model
	// fixture (defaults: resnet18, 10, 32, 8, 0.6, 1).
	Model   string  `json:"model,omitempty"`
	Classes int     `json:"classes,omitempty"`
	Size    int     `json:"size,omitempty"`
	Epochs  int     `json:"epochs,omitempty"`
	Noise   float64 `json:"noise,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	// Trials is the trial budget (default 1000).
	Trials int `json:"trials,omitempty"`
	// Error, Scope, Backend and DType select the fault model (defaults:
	// bitflip, neuron, f32, int8 — the CLI's defaults).
	Error   string `json:"error,omitempty"`
	Scope   string `json:"scope,omitempty"`
	Backend string `json:"backend,omitempty"`
	DType   string `json:"dtype,omitempty"`
	// ActZeroPoint enables asymmetric input quantizers on the int8
	// backend.
	ActZeroPoint bool `json:"act_zp,omitempty"`
	// Schedule and TrialBatch tune the engine's execution planner
	// (throughput only; results are byte-identical regardless).
	Schedule   string `json:"schedule,omitempty"`
	TrialBatch int    `json:"trial_batch,omitempty"`
	// NoPrefixReuse disables clean-prefix checkpoint reuse (the wire
	// format inverts the CLI's -prefix-reuse=true so the zero value keeps
	// the default behavior).
	NoPrefixReuse bool `json:"no_prefix_reuse,omitempty"`
	// Shards is how many engine legs the campaign is split into
	// (default 1); Workers is each leg's worker count (default 4).
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// SkipErrors counts failing trials instead of aborting.
	SkipErrors bool `json:"skip_errors,omitempty"`
	// StopCI/StopConf/StopMin attach the sequential early-stopping rule
	// (see the -stop-ci flag family); StopCI 0 disables it.
	StopCI   float64 `json:"stop_ci,omitempty"`
	StopConf float64 `json:"stop_conf,omitempty"`
	StopMin  int     `json:"stop_min,omitempty"`
	// Stratify and Dedup mirror the CLI's -stratify/-dedup estimator
	// flags. The service does not support them (see ErrUnsupportedEstimator);
	// they exist on the wire so a submission asking for them fails loudly
	// instead of being silently decoded as an unknown-field error with no
	// explanation.
	Stratify bool `json:"stratify,omitempty"`
	Dedup    bool `json:"dedup,omitempty"`
	// Scenario embeds a declarative scenario (internal/scenario) as the
	// campaign's fault shape. When set, the scenario's model and fault
	// blocks own the fixture and fault model — the spec's
	// model/classes/size/epochs/noise/error/scope/backend/dtype/act_zp
	// fields must be left zero — and the scenario's run block provides
	// defaults for any unset run knobs here (the spec's knobs win).
	// Scenario observers are not in the wire format: the shard
	// coordinator folds aggregates only.
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
}

// Canon fills defaults, returning the spec every zero-valued field
// resolved to the value gofi-campaign would use. With an embedded
// scenario the fixture/fault fields stay untouched (the scenario owns
// them; Validate rejects non-zero values) and the scenario's run block
// backfills any unset run knobs.
func (sp Spec) Canon() Spec {
	if sp.Scenario != nil {
		s := sp.Scenario.Canon()
		sp.Scenario = &s
		if sp.Seed == 0 {
			sp.Seed = s.Run.Seed
		}
		if sp.Trials <= 0 {
			sp.Trials = s.Run.Trials
		}
		if sp.Workers <= 0 {
			sp.Workers = s.Run.Workers
		}
		if sp.Schedule == "" {
			sp.Schedule = s.Run.Schedule
		}
		if sp.TrialBatch == 0 {
			sp.TrialBatch = s.Run.TrialBatch
		}
		if s.Run.PrefixReuse != nil && !*s.Run.PrefixReuse {
			sp.NoPrefixReuse = true
		}
		if s.Run.SkipErrors {
			sp.SkipErrors = true
		}
		if sp.StopCI == 0 && s.Run.Stop.CI > 0 {
			sp.StopCI, sp.StopConf, sp.StopMin = s.Run.Stop.CI, s.Run.Stop.Conf, s.Run.Stop.Min
		}
		if sp.Shards <= 0 {
			sp.Shards = 1
		}
		if sp.StopCI > 0 && sp.StopConf == 0 {
			sp.StopConf = 0.95
		}
		return sp
	}
	if sp.Model == "" {
		sp.Model = "resnet18"
	}
	if sp.Classes <= 0 {
		sp.Classes = 10
	}
	if sp.Size <= 0 {
		sp.Size = 32
	}
	if sp.Epochs <= 0 {
		sp.Epochs = 8
	}
	if sp.Noise == 0 {
		sp.Noise = 0.6
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Trials <= 0 {
		sp.Trials = 1000
	}
	if sp.Error == "" {
		sp.Error = "bitflip"
	}
	if sp.Scope == "" {
		sp.Scope = "neuron"
	}
	if sp.Backend == "" {
		sp.Backend = "f32"
	}
	if sp.DType == "" {
		sp.DType = "int8"
	}
	if sp.Schedule == "" {
		sp.Schedule = "auto"
	}
	if sp.Shards <= 0 {
		sp.Shards = 1
	}
	if sp.Workers <= 0 {
		sp.Workers = 4
	}
	if sp.StopCI > 0 && sp.StopConf == 0 {
		sp.StopConf = 0.95
	}
	return sp
}

// Validate rejects specs that cannot run, mirroring the CLI's flag
// checks so a rejected submission would also have been a rejected
// command line. Call on a Canon()ed spec.
func (sp Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrSpec, fmt.Sprintf(format, args...))
	}
	if sp.V != WireVersion {
		return fmt.Errorf("%w: got %d, this build speaks %d", ErrWireVersion, sp.V, WireVersion)
	}
	if sp.Stratify {
		return fmt.Errorf("%w: stratified sampling's estimate is not an index-ordered fold; run -stratify locally", ErrUnsupportedEstimator)
	}
	if sp.Dedup {
		return fmt.Errorf("%w: fault-space dedup's canonical-outcome fills are not an index-ordered fold; run -dedup locally", ErrUnsupportedEstimator)
	}
	if sp.Scenario != nil {
		return sp.validateScenario()
	}
	em, err := experiments.ParseErrorModel(sp.Error)
	if err != nil {
		return bad("%v", err)
	}
	if _, err := experiments.ParseScope(sp.Scope, em); err != nil {
		return bad("%v", err)
	}
	dt, err := experiments.ParseDType(sp.DType)
	if err != nil {
		return bad("%v", err)
	}
	be, err := experiments.ParseBackend(sp.Backend)
	if err != nil {
		return bad("%v", err)
	}
	if be == "int8" && dt != core.INT8 {
		return bad("backend int8 implies dtype int8, got %q", sp.DType)
	}
	if _, err := campaign.ParseSchedule(sp.Schedule); err != nil {
		return bad("%v", err)
	}
	if sp.Trials <= 0 {
		return bad("trials must be positive, got %d", sp.Trials)
	}
	return sp.validateRunShape()
}

// validateScenario checks a spec whose fault shape is an embedded
// scenario. Call on a Canon()ed spec.
func (sp Spec) validateScenario() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrSpec, fmt.Sprintf(format, args...))
	}
	if sp.Model != "" || sp.Classes != 0 || sp.Size != 0 || sp.Epochs != 0 || sp.Noise != 0 ||
		sp.Error != "" || sp.Scope != "" || sp.Backend != "" || sp.DType != "" || sp.ActZeroPoint {
		return bad("a scenario owns the model fixture and fault shape; drop the spec's model/classes/size/epochs/noise/error/scope/backend/dtype/act_zp fields")
	}
	if err := sp.Scenario.Validate(); err != nil {
		return bad("%v", err)
	}
	if len(sp.Scenario.Observers) != 0 {
		return bad("scenario observers are not in the wire format: the shard coordinator folds aggregates only")
	}
	if _, err := campaign.ParseSchedule(sp.Schedule); err != nil {
		return bad("%v", err)
	}
	if sp.Trials <= 0 {
		// Only sweep scenarios canonicalize to a zero budget (it is filled
		// at compile time); the coordinator shards by trial range up front,
		// so the wire needs the count declared.
		return bad("sweep scenarios must declare run.trials (or the spec's trials) for service submission")
	}
	return sp.validateRunShape()
}

// validateRunShape checks the run knobs shared by plain and scenario
// specs.
func (sp Spec) validateRunShape() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrSpec, fmt.Sprintf(format, args...))
	}
	if sp.TrialBatch < 0 {
		return bad("trial_batch must be >= 0, got %d", sp.TrialBatch)
	}
	if sp.Shards < 1 {
		return bad("shards must be >= 1, got %d", sp.Shards)
	}
	if sp.Workers < 1 {
		return bad("workers must be >= 1, got %d", sp.Workers)
	}
	if sp.StopCI < 0 || sp.StopCI >= 0.5 {
		return bad("stop_ci must be in [0, 0.5), got %g", sp.StopCI)
	}
	if sp.StopCI > 0 {
		if sp.StopConf <= 0 || sp.StopConf >= 1 {
			return bad("stop_conf must be in (0,1), got %g", sp.StopConf)
		}
		if sp.StopMin < 0 {
			return bad("stop_min must be non-negative, got %d", sp.StopMin)
		}
	}
	return nil
}

// DecodeSpec reads one spec from r, rejecting unknown fields (a typo in
// a field name should fail loudly, not silently run the default), and
// returns it canonicalized and validated. Corrupt input returns an
// error, never a panic.
func DecodeSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	sp = sp.Canon()
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// Config translates the spec into the experiments-layer configuration
// the local CLI would build for the same flags. The Trials/Workers
// fields carry over directly; sharding stays the coordinator's business.
func (sp Spec) Config() (experiments.GenericCampaignConfig, error) {
	sp = sp.Canon()
	if err := sp.Validate(); err != nil {
		return experiments.GenericCampaignConfig{}, err
	}
	if sp.Scenario != nil {
		cfg, err := experiments.ScenarioConfig(*sp.Scenario)
		if err != nil {
			return experiments.GenericCampaignConfig{}, err
		}
		// The spec's (Canon-resolved) run knobs win over the scenario's
		// run block; neither changes which fault a trial index arms.
		sched, _ := campaign.ParseSchedule(sp.Schedule)
		cfg.Trials = sp.Trials
		cfg.Workers = sp.Workers
		cfg.Seed = sp.Seed
		cfg.Schedule = sched
		cfg.TrialBatch = sp.TrialBatch
		cfg.PrefixReuse = !sp.NoPrefixReuse
		cfg.OnError = campaign.FailFast
		if sp.SkipErrors {
			cfg.OnError = campaign.SkipAndCount
		}
		cfg.StopCI, cfg.StopConf, cfg.StopMin = sp.StopCI, sp.StopConf, sp.StopMin
		return cfg, nil
	}
	em, _ := experiments.ParseErrorModel(sp.Error)
	arm, _ := experiments.ParseScope(sp.Scope, em)
	dt, _ := experiments.ParseDType(sp.DType)
	sched, _ := campaign.ParseSchedule(sp.Schedule)
	policy := campaign.FailFast
	if sp.SkipErrors {
		policy = campaign.SkipAndCount
	}
	return experiments.GenericCampaignConfig{
		Model:          sp.Model,
		Classes:        sp.Classes,
		InSize:         sp.Size,
		TrainEpochs:    sp.Epochs,
		Noise:          float32(sp.Noise),
		Trials:         sp.Trials,
		Workers:        sp.Workers,
		DType:          dt,
		Backend:        sp.Backend,
		ActZeroPoint:   sp.ActZeroPoint,
		Arm:            arm,
		IsolateWeights: sp.Scope == "weight",
		Seed:           sp.Seed,
		OnError:        policy,
		PrefixReuse:    !sp.NoPrefixReuse,
		TrialBatch:     sp.TrialBatch,
		Schedule:       sched,
		StopCI:         sp.StopCI,
		StopConf:       sp.StopConf,
		StopMin:        sp.StopMin,
	}, nil
}

// envKey is the fixture-cache key: every spec field that affects the
// prepared environment (trained weights, replica geometry, generator
// wiring) and none that only affect a run (trial budget, sharding,
// stopping rule). Two campaigns with equal keys share one trained
// fixture.
func (sp Spec) envKey() string {
	sp = sp.Canon()
	sp.Trials, sp.Shards, sp.Workers = 0, 0, 0
	sp.StopCI, sp.StopConf, sp.StopMin = 0, 0, 0
	if sp.Scenario != nil {
		// Mirror the zeroing inside the scenario's run block (its other
		// run knobs were already copied to the top level by Canon).
		s := *sp.Scenario
		s.Run.Trials, s.Run.Workers = 0, 0
		s.Run.Stop = scenario.StopSpec{}
		sp.Scenario = &s
	}
	raw, _ := json.Marshal(sp)
	return string(raw)
}

// Campaign lifecycle states.
const (
	StatePending   = "pending"   // accepted, waiting for a slot
	StateTraining  = "training"  // preparing the model fixture
	StateRunning   = "running"   // engine legs executing
	StatePaused    = "paused"    // checkpointed, resumable
	StateDone      = "done"      // completed (budget or stop rule)
	StateCancelled = "cancelled" // terminally cancelled by a client
	StateFailed    = "failed"    // a trial or the fixture failed
)

// terminalState reports whether a campaign in state s will never run
// again.
func terminalState(s string) bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// AggView is the wire form of a live aggregate: the fold counters plus
// the derived SDC rate and its Wilson interval at 99% confidence (the
// same interval the CLI table prints).
type AggView struct {
	Trials      int     `json:"trials"`
	Top1Mis     int     `json:"top1_mis"`
	OutOfTop5   int     `json:"out_of_top5"`
	NonFinite   int     `json:"non_finite"`
	BigConfDrop int     `json:"big_conf_drop"`
	Skipped     int     `json:"skipped"`
	Rate        float64 `json:"rate"`
	Lo          float64 `json:"lo"`
	Hi          float64 `json:"hi"`
	// NextTrial is the coordinator's fold frontier (trials folded so
	// far); StopTrial the global index the stopping rule fired on (-1:
	// not fired).
	NextTrial int `json:"next_trial"`
	StopTrial int `json:"stop_trial"`
}

// viewOf renders an aggregate at a fold frontier.
func viewOf(agg campaign.Aggregate, next, stopTrial int) AggView {
	lo, hi := agg.WilsonCI(campaign.Z99)
	return AggView{
		Trials:      agg.Trials,
		Top1Mis:     agg.Top1Mis,
		OutOfTop5:   agg.OutOfTop5,
		NonFinite:   agg.NonFinite,
		BigConfDrop: agg.BigConfDrop,
		Skipped:     agg.Skipped,
		Rate:        agg.Rate(),
		Lo:          lo,
		Hi:          hi,
		NextTrial:   next,
		StopTrial:   stopTrial,
	}
}

// Status is the wire form of one campaign's state, returned by the
// submit, get, list and lifecycle endpoints.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Spec  Spec   `json:"spec"`
	// CleanAcc and Eligible describe the trained fixture (zero until
	// training completes).
	CleanAcc float64 `json:"clean_acc,omitempty"`
	Eligible int     `json:"eligible,omitempty"`
	Agg      AggView `json:"agg"`
	Err      string  `json:"error,omitempty"`
}

// Event is one line of a campaign's chunked-JSONL stream.
type Event struct {
	// Type is one of "hello", "trial", "agg", "state", "done", "error".
	Type string `json:"type"`
	// Campaign is the campaign ID (hello events only).
	Campaign string `json:"campaign,omitempty"`
	// Trial carries one index-ordered record (trial events). Worker is
	// always 0 on the wire: worker attribution depends on work-stealing
	// timing, and the stream is part of the byte-identity contract.
	Trial *campaign.TrialRecord `json:"trial,omitempty"`
	// Agg carries a live aggregate (hello, agg and done events).
	Agg *AggView `json:"agg,omitempty"`
	// State carries the campaign state (hello, state and done events).
	State string `json:"state,omitempty"`
	// Err carries the failure message (error events).
	Err string `json:"error,omitempty"`
}

// DecodeEvent parses one stream line.
func DecodeEvent(line []byte) (Event, error) {
	var ev Event
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, fmt.Errorf("serve: bad stream line %q: %v", truncate(string(line), 80), err)
	}
	return ev, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return strings.ToValidUTF8(s[:n], "") + "..."
}
