package serve

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"gofi/internal/campaign"
	"gofi/internal/scenario"
)

// wireScenario is a small valid scenario for wire tests (no observers:
// the wire format rejects them).
func wireScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name:  "wire",
		Model: scenario.ModelSpec{Arch: "alexnet", Classes: 4, InSize: 16, Epochs: 6},
		Run:   scenario.RunSpec{Trials: 40, Seed: 11, Workers: 2},
	}
}

func scenarioSpec() Spec {
	return Spec{V: WireVersion, Scenario: wireScenario()}
}

func TestSpecRejectsEstimators(t *testing.T) {
	for _, c := range []struct {
		name string
		mut  func(*Spec)
	}{
		{"stratify", func(sp *Spec) { sp.Stratify = true }},
		{"dedup", func(sp *Spec) { sp.Dedup = true }},
	} {
		sp := baseSpec().Canon()
		c.mut(&sp)
		err := sp.Validate()
		if !errors.Is(err, ErrUnsupportedEstimator) {
			t.Errorf("%s: Validate() = %v, want errors.Is(ErrUnsupportedEstimator)", c.name, err)
		}
		// The rejection also applies with an embedded scenario, and comes
		// before scenario validation.
		ssp := scenarioSpec().Canon()
		c.mut(&ssp)
		if err := ssp.Validate(); !errors.Is(err, ErrUnsupportedEstimator) {
			t.Errorf("%s + scenario: Validate() = %v, want errors.Is(ErrUnsupportedEstimator)", c.name, err)
		}
	}
	// And over the wire: a decoded submission fails loudly, not with an
	// unknown-field error.
	_, err := DecodeSpec(strings.NewReader(`{"v":1,"stratify":true}`))
	if !errors.Is(err, ErrUnsupportedEstimator) {
		t.Fatalf("DecodeSpec(stratify) = %v, want errors.Is(ErrUnsupportedEstimator)", err)
	}
	if _, err := DecodeSpec(strings.NewReader(`{"v":1,"dedup":true}`)); !errors.Is(err, ErrUnsupportedEstimator) {
		t.Fatalf("DecodeSpec(dedup) = %v, want errors.Is(ErrUnsupportedEstimator)", err)
	}
}

func TestScenarioSpecCanonBackfill(t *testing.T) {
	sp := scenarioSpec().Canon()
	// The scenario's run block backfills the spec's unset run knobs...
	if sp.Trials != 40 || sp.Seed != 11 || sp.Workers != 2 {
		t.Fatalf("run knobs not backfilled: %+v", sp)
	}
	if sp.Schedule != "auto" || sp.Shards != 1 {
		t.Fatalf("schedule/shards defaults drifted: %+v", sp)
	}
	// ...but the fixture/fault fields stay zero: the scenario owns them.
	if sp.Model != "" || sp.Classes != 0 || sp.Error != "" || sp.DType != "" || sp.Backend != "" {
		t.Fatalf("fixture fields should stay zero under a scenario: %+v", sp)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("canonical scenario spec invalid: %v", err)
	}

	// Spec knobs win over the scenario's run block.
	over := scenarioSpec()
	over.Trials, over.Seed, over.Workers = 99, 7, 5
	over = over.Canon()
	if over.Trials != 99 || over.Seed != 7 || over.Workers != 5 {
		t.Fatalf("spec knobs lost to the scenario: %+v", over)
	}

	// prefix_reuse: false, skip_errors and the stop rule carry over.
	rich := scenarioSpec()
	off := false
	rich.Scenario.Run.PrefixReuse = &off
	rich.Scenario.Run.SkipErrors = true
	rich.Scenario.Run.Stop = scenario.StopSpec{CI: 0.02, Min: 10}
	rich = rich.Canon()
	if !rich.NoPrefixReuse || !rich.SkipErrors {
		t.Fatalf("prefix_reuse/skip_errors not carried: %+v", rich)
	}
	if rich.StopCI != 0.02 || rich.StopConf != 0.95 || rich.StopMin != 10 {
		t.Fatalf("stop rule not carried: ci=%g conf=%g min=%d", rich.StopCI, rich.StopConf, rich.StopMin)
	}

	// Canon is idempotent on scenario specs too.
	if again := sp.Canon(); !reflect.DeepEqual(again, sp) {
		t.Fatalf("canon not idempotent:\n got %+v\nwant %+v", again, sp)
	}
}

func TestScenarioSpecValidate(t *testing.T) {
	mut := func(f func(*Spec)) Spec {
		sp := scenarioSpec()
		f(&sp)
		return sp.Canon()
	}
	cases := []struct {
		name string
		sp   Spec
		want error
	}{
		{"model conflict", mut(func(sp *Spec) { sp.Model = "alexnet" }), ErrSpec},
		{"classes conflict", mut(func(sp *Spec) { sp.Classes = 4 }), ErrSpec},
		{"error conflict", mut(func(sp *Spec) { sp.Error = "zero" }), ErrSpec},
		{"dtype conflict", mut(func(sp *Spec) { sp.DType = "fp16" }), ErrSpec},
		{"backend conflict", mut(func(sp *Spec) { sp.Backend = "int8" }), ErrSpec},
		{"act_zp conflict", mut(func(sp *Spec) { sp.ActZeroPoint = true }), ErrSpec},
		{"observers", mut(func(sp *Spec) {
			sp.Scenario.Observers = []scenario.ObserverSpec{{Kind: scenario.ObsSDC}}
		}), ErrSpec},
		{"invalid scenario", mut(func(sp *Spec) { sp.Scenario.Selector.Kind = "martian" }), ErrSpec},
		{"bad schedule", mut(func(sp *Spec) { sp.Schedule = "chaotic" }), ErrSpec},
		{"sweep without trials", mut(func(sp *Spec) {
			sp.Scenario.Selector = scenario.SelectorSpec{Kind: scenario.SelSweep, Sweep: &scenario.SweepSpec{}}
			sp.Scenario.Run.Trials = 0
		}), ErrSpec},
	}
	for _, c := range cases {
		if err := c.sp.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: Validate() = %v, want errors.Is(%v)", c.name, err, c.want)
		}
	}
	// A sweep that declares its budget (scenario- or spec-side) passes.
	sweep := mut(func(sp *Spec) {
		sp.Scenario.Selector = scenario.SelectorSpec{Kind: scenario.SelSweep, Sweep: &scenario.SweepSpec{}}
		sp.Scenario.Run.Trials = 64
	})
	if err := sweep.Validate(); err != nil {
		t.Errorf("sweep with declared trials: %v", err)
	}
}

func TestScenarioSpecConfig(t *testing.T) {
	sp := scenarioSpec()
	sp.Trials = 24
	sp.NoPrefixReuse = true
	sp.SkipErrors = true
	sp.Schedule = "pack"
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scenario == nil {
		t.Fatal("config lost the scenario")
	}
	if !reflect.DeepEqual(*cfg.Scenario, sp.Scenario.Canon()) {
		t.Fatal("config carries a non-canonical scenario")
	}
	// The spec's run knobs won.
	if cfg.Trials != 24 || cfg.Seed != 11 || cfg.Workers != 2 {
		t.Fatalf("run knobs drifted: %+v", cfg)
	}
	if cfg.PrefixReuse {
		t.Fatal("no_prefix_reuse not honored")
	}
	if cfg.OnError != campaign.SkipAndCount {
		t.Fatal("skip_errors not honored")
	}
	if cfg.Schedule != campaign.SchedulePack {
		t.Fatalf("schedule = %v, want pack", cfg.Schedule)
	}
	// The scenario owns the fixture: the generic fields stay zero and
	// Prepare resolves them from the scenario's model block.
	if cfg.Model != "" || cfg.Classes != 0 {
		t.Fatalf("fixture fields should stay zero: %+v", cfg)
	}
}

func TestScenarioSpecDecode(t *testing.T) {
	doc := `{"v":1,"scenario":{
		"model":{"arch":"alexnet","classes":4,"in_size":16,"epochs":6},
		"run":{"trials":40,"seed":11,"workers":2}}}`
	sp, err := DecodeSpec(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Scenario == nil || sp.Scenario.Model.Arch != "alexnet" || sp.Trials != 40 {
		t.Fatalf("decoded spec = %+v", sp)
	}
	// Unknown fields inside the embedded scenario fail loudly too.
	if _, err := DecodeSpec(strings.NewReader(`{"v":1,"scenario":{"selctor":{}}}`)); !errors.Is(err, ErrSpec) {
		t.Fatalf("unknown scenario field: %v", err)
	}
	// Scenario observers are rejected on the wire.
	withObs := `{"v":1,"scenario":{"observers":[{"kind":"sdc"}],"run":{"trials":10}}}`
	if _, err := DecodeSpec(strings.NewReader(withObs)); !errors.Is(err, ErrSpec) {
		t.Fatalf("scenario observers: %v", err)
	}
}

func TestScenarioEnvKey(t *testing.T) {
	base := scenarioSpec()
	// Run-shape knobs — top-level or inside the scenario's run block —
	// must not split the fixture cache.
	same := []func(*Spec){
		func(sp *Spec) { sp.Trials = 77777 },
		func(sp *Spec) { sp.Shards = 9 },
		func(sp *Spec) { sp.Scenario.Run.Trials = 500 },
		func(sp *Spec) { sp.Scenario.Run.Workers = 13 },
		func(sp *Spec) { sp.Scenario.Run.Stop = scenario.StopSpec{CI: 0.01} },
	}
	for i, f := range same {
		sp := scenarioSpec()
		f(&sp)
		if sp.envKey() != base.envKey() {
			t.Errorf("run-shape mutation %d changed the fixture key", i)
		}
	}
	// Fixture and fault fields must.
	diff := []func(*Spec){
		func(sp *Spec) { sp.Scenario.Model.Arch = "squeezenet" },
		func(sp *Spec) { sp.Scenario.Fault.Backend = "int8" },
		func(sp *Spec) { sp.Scenario.Fault.DType = "fp16" },
		func(sp *Spec) { sp.Scenario.Layers = []scenario.Rule{{Match: "*"}} },
		func(sp *Spec) { sp.Scenario.Run.Seed = 99 }, // the campaign seed is fixture state (training seed)
	}
	for i, f := range diff {
		sp := scenarioSpec()
		f(&sp)
		if sp.envKey() == base.envKey() {
			t.Errorf("fixture mutation %d did not change the fixture key", i)
		}
	}
	// A plain spec and a scenario spec never share a fixture.
	if base.envKey() == baseSpec().envKey() {
		t.Error("scenario and plain specs share a fixture key")
	}
}
