package serve

import (
	"errors"
	"strings"
	"testing"

	"gofi/internal/campaign"
	"gofi/internal/core"
)

func TestSpecCanonDefaults(t *testing.T) {
	sp := Spec{V: WireVersion}.Canon()
	want := Spec{
		V: WireVersion, Model: "resnet18", Classes: 10, Size: 32, Epochs: 8,
		Noise: 0.6, Seed: 1, Trials: 1000, Error: "bitflip", Scope: "neuron",
		Backend: "f32", DType: "int8", Schedule: "auto", Shards: 1, Workers: 4,
	}
	if sp != want {
		t.Fatalf("canon defaults drifted:\n got %+v\nwant %+v", sp, want)
	}
	// Canon is idempotent, and set fields survive it.
	if again := sp.Canon(); again != sp {
		t.Fatalf("canon not idempotent: %+v vs %+v", again, sp)
	}
	withStop := Spec{V: WireVersion, StopCI: 0.01}.Canon()
	if withStop.StopConf != 0.95 {
		t.Fatalf("stop_conf default = %g, want 0.95", withStop.StopConf)
	}
}

func TestSpecValidate(t *testing.T) {
	good := baseSpec().Canon()
	if err := good.Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
	mut := func(f func(*Spec)) Spec {
		sp := baseSpec().Canon()
		f(&sp)
		return sp
	}
	bad := []struct {
		name string
		sp   Spec
		want error
	}{
		{"version", mut(func(sp *Spec) { sp.V = 2 }), ErrWireVersion},
		{"error model", mut(func(sp *Spec) { sp.Error = "martian" }), ErrSpec},
		{"scope", mut(func(sp *Spec) { sp.Scope = "galaxy" }), ErrSpec},
		{"dtype", mut(func(sp *Spec) { sp.DType = "fp64" }), ErrSpec},
		{"backend", mut(func(sp *Spec) { sp.Backend = "tpu" }), ErrSpec},
		{"int8 mismatch", mut(func(sp *Spec) { sp.Backend = "int8"; sp.DType = "fp16" }), ErrSpec},
		{"schedule", mut(func(sp *Spec) { sp.Schedule = "chaotic" }), ErrSpec},
		{"trial batch", mut(func(sp *Spec) { sp.TrialBatch = -1 }), ErrSpec},
		{"stop ci", mut(func(sp *Spec) { sp.StopCI = 0.5 }), ErrSpec},
		{"stop conf", mut(func(sp *Spec) { sp.StopCI = 0.01; sp.StopConf = 1.5 }), ErrSpec},
		{"stop min", mut(func(sp *Spec) { sp.StopCI = 0.01; sp.StopMin = -3 }), ErrSpec},
	}
	for _, c := range bad {
		if err := c.sp.Validate(); !errors.Is(err, c.want) {
			t.Fatalf("%s: Validate() = %v, want errors.Is(%v)", c.name, err, c.want)
		}
	}
}

func TestDecodeSpec(t *testing.T) {
	// The minimal spec resolves to the CLI defaults.
	sp, err := DecodeSpec(strings.NewReader(`{"v":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp != (Spec{V: WireVersion}).Canon() {
		t.Fatalf("minimal spec = %+v", sp)
	}
	// Typos fail loudly instead of silently running defaults.
	if _, err := DecodeSpec(strings.NewReader(`{"v":1,"modle":"vgg19"}`)); !errors.Is(err, ErrSpec) {
		t.Fatalf("unknown field: %v", err)
	}
	if _, err := DecodeSpec(strings.NewReader(`{"v":7}`)); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("future version: %v", err)
	}
	if _, err := DecodeSpec(strings.NewReader(`{"v":`)); !errors.Is(err, ErrSpec) {
		t.Fatalf("truncated: %v", err)
	}
	// A missing version is not silently treated as current.
	if _, err := DecodeSpec(strings.NewReader(`{}`)); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("missing version: %v", err)
	}
}

func TestSpecConfig(t *testing.T) {
	sp := baseSpec()
	sp.Scope = "weight"
	sp.NoPrefixReuse = true
	sp.StopCI = 0.02
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.IsolateWeights {
		t.Fatal("weight scope must isolate weights")
	}
	if cfg.PrefixReuse {
		t.Fatal("no_prefix_reuse not honored")
	}
	if cfg.OnError != campaign.SkipAndCount {
		t.Fatal("skip_errors not honored")
	}
	if cfg.DType != core.INT8 {
		t.Fatalf("dtype = %v", cfg.DType)
	}
	if cfg.Model != "alexnet" || cfg.Trials != sp.Trials || cfg.Seed != sp.Seed {
		t.Fatalf("fixture fields drifted: %+v", cfg)
	}
	if cfg.StopCI != 0.02 || cfg.StopConf != 0.95 {
		t.Fatalf("stop fields drifted: ci=%g conf=%g", cfg.StopCI, cfg.StopConf)
	}
	if _, err := (Spec{V: 3}).Config(); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("Config on a bad version: %v", err)
	}
}

func TestEnvKey(t *testing.T) {
	base := baseSpec()
	// Run-shape fields must not split the fixture cache.
	same := []func(*Spec){
		func(sp *Spec) { sp.Trials = 77777 },
		func(sp *Spec) { sp.Shards = 9 },
		func(sp *Spec) { sp.Workers = 13 },
		func(sp *Spec) { sp.StopCI = 0.01; sp.StopConf = 0.9; sp.StopMin = 5 },
	}
	for i, f := range same {
		sp := base
		f(&sp)
		if sp.envKey() != base.envKey() {
			t.Fatalf("run-shape mutation %d changed the fixture key", i)
		}
	}
	// Fixture fields must.
	diff := []func(*Spec){
		func(sp *Spec) { sp.Model = "squeezenet" },
		func(sp *Spec) { sp.Seed = 7 },
		func(sp *Spec) { sp.DType = "fp16" },
		func(sp *Spec) { sp.Backend = "int8"; sp.DType = "int8" },
		func(sp *Spec) { sp.Error = "zero" },
		func(sp *Spec) { sp.Noise = 0.3 },
	}
	for i, f := range diff {
		sp := base
		f(&sp)
		if sp.envKey() == base.envKey() {
			t.Fatalf("fixture mutation %d did not change the fixture key", i)
		}
	}
}

func TestTerminalState(t *testing.T) {
	for _, s := range []string{StateDone, StateCancelled, StateFailed} {
		if !terminalState(s) {
			t.Fatalf("%s should be terminal", s)
		}
	}
	for _, s := range []string{StatePending, StateTraining, StateRunning, StatePaused} {
		if terminalState(s) {
			t.Fatalf("%s should not be terminal", s)
		}
	}
}

func TestViewOf(t *testing.T) {
	var agg campaign.Aggregate
	agg.Add(campaign.Outcome{Top1Changed: true, ConfidenceDrop: 0.5})
	agg.Add(campaign.Outcome{})
	v := viewOf(agg, 2, -1)
	if v.Trials != 2 || v.Top1Mis != 1 || v.Rate != 0.5 || v.NextTrial != 2 || v.StopTrial != -1 {
		t.Fatalf("view = %+v", v)
	}
	if !(v.Lo > 0 && v.Lo < v.Rate && v.Rate < v.Hi && v.Hi < 1) {
		t.Fatalf("Wilson interval [%g, %g] does not bracket %g", v.Lo, v.Hi, v.Rate)
	}
}

func TestDecodeEvent(t *testing.T) {
	ev, err := DecodeEvent([]byte(`{"type":"agg","agg":{"trials":3,"rate":0.25,"next_trial":3,"stop_trial":-1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != "agg" || ev.Agg == nil || ev.Agg.Trials != 3 || ev.Agg.Rate != 0.25 {
		t.Fatalf("event = %+v", ev)
	}
	if _, err := DecodeEvent([]byte(`{"type":` + strings.Repeat("x", 200))); err == nil {
		t.Fatal("corrupt line decoded")
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 80); got != "short" {
		t.Fatalf("truncate(short) = %q", got)
	}
	long := strings.Repeat("é", 60) // 120 bytes of two-byte runes
	got := truncate(long, 81)       // cuts mid-rune; the partial rune must be dropped
	if !strings.HasSuffix(got, "...") || strings.ContainsRune(got, '�') {
		t.Fatalf("truncate mangled runes: %q", got)
	}
}
