//go:build amd64

package tensor

import (
	"math/rand"
	"testing"
)

// TestMatMulForcedScalarMatchesAVX flips the kernel gate and requires the
// scalar float32 micro-kernels to reproduce the AVX2 path bit-for-bit
// (the same per-element chains, just unvectorized).
func TestMatMulForcedScalarMatchesAVX(t *testing.T) {
	if !gemmAVX2 {
		t.Skip("no AVX2 on this CPU; scalar path is the only kernel")
	}
	rng := rand.New(rand.NewSource(47))
	a := RandUniform(rng, -1, 1, 23, 65)
	b := RandUniform(rng, -1, 1, 65, 50)
	want := MatMul(a, b)
	gemmAVX2 = false
	got := MatMul(a, b)
	gemmAVX2 = true
	if !got.Equal(want) {
		t.Fatal("forced-scalar MatMul differs from AVX2 path")
	}
}

func TestKernelBackendNames(t *testing.T) {
	saved := gemmAVX2
	defer func() { gemmAVX2 = saved }()
	gemmAVX2 = true
	if KernelBackend() != "avx2" {
		t.Fatalf("KernelBackend with gate on = %q", KernelBackend())
	}
	gemmAVX2 = false
	if KernelBackend() != "scalar" {
		t.Fatalf("KernelBackend with gate off = %q", KernelBackend())
	}
}
