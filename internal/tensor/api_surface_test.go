package tensor

import (
	"math/rand"
	"testing"
)

// TestMatMulWrapperFamily pins the accumulate/transpose wrappers to the
// plain MatMul result. The GEMM determinism contract fixes every
// element's accumulation chain in ascending-k order regardless of
// operand transposition, so the comparisons are exact, not approximate.
func TestMatMulWrapperFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m, k, n := 5, 7, 9
	a := RandUniform(rng, -1, 1, m, k)
	b := RandUniform(rng, -1, 1, k, n)
	bt := New(n, k)
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			bt.Data()[j*k+i] = b.Data()[i*n+j]
		}
	}
	at := New(k, m)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			at.Data()[p*m+i] = a.Data()[i*k+p]
		}
	}
	want := MatMul(a, b)

	// The first accumulate onto zeros matches the overwrite chain
	// exactly; the second interleaves the existing value into the
	// chain, so doubling is only approximate.
	acc := New(m, n)
	MatMulAcc(acc, a, b)
	if !acc.Equal(want) {
		t.Fatal("MatMulAcc onto zeros != MatMul")
	}
	MatMulAcc(acc, a, b)
	for i, w := range want.Data() {
		if d := acc.Data()[i] - 2*w; d > 1e-5 || d < -1e-5 {
			t.Fatalf("MatMulAcc element %d = %g, want ≈%g", i, acc.Data()[i], 2*w)
		}
	}

	// The transposed forms may take differently-ordered accumulation
	// chains (the small-problem dot path), so compare approximately.
	near := func(label string, got *Tensor) {
		t.Helper()
		for i, w := range want.Data() {
			if d := got.Data()[i] - w; d > 1e-5 || d < -1e-5 {
				t.Fatalf("%s element %d = %g, want ≈%g", label, i, got.Data()[i], w)
			}
		}
	}
	tb := New(m, n)
	MatMulTransB(tb, a, bt)
	near("MatMulTransB", tb)

	ta := New(m, n)
	MatMulTransAAcc(ta, at, b)
	near("MatMulTransAAcc", ta)

	into := make([]float32, m*n)
	matMulInto(into, a.Data(), b.Data(), m, k, n)
	for i, w := range want.Data() {
		if into[i] != w {
			t.Fatalf("matMulInto element %d = %g, want %g", i, into[i], w)
		}
	}
	matMulAccInto(into, a.Data(), b.Data(), m, k, n)
	for i, w := range want.Data() {
		if d := into[i] - 2*w; d > 1e-5 || d < -1e-5 {
			t.Fatalf("matMulAccInto element %d = %g, want ≈%g", i, into[i], 2*w)
		}
	}
}

// TestConv2dIntoReusesDst: the Into variant writes a caller buffer and
// matches the allocating form bit-for-bit, including on a second pass
// over a dirty dst.
func TestConv2dIntoReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := RandUniform(rng, -1, 1, 2, 3, 8, 8)
	w := RandUniform(rng, -1, 1, 4, 3, 3, 3)
	bias := RandUniform(rng, -1, 1, 4)
	spec := ConvSpec{PadH: 1, PadW: 1}
	want := Conv2d(x, w, bias, spec)
	dst := New(want.Shape()...)
	for pass := 0; pass < 2; pass++ {
		Conv2dInto(dst, x, w, bias, spec)
		if !dst.Equal(want) {
			t.Fatalf("pass %d: Conv2dInto differs from Conv2d", pass)
		}
	}
}

// The kernel-gate-flipping tests (forced-scalar vs AVX2 parity,
// KernelBackend names) live in api_surface_amd64_test.go: the gemmAVX2
// gate only exists on amd64 builds.

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	fanIn, fanOut := 30, 20
	w := XavierInit(rng, fanIn, fanOut, 10, 10)
	limit := float32(0.35) // sqrt(6/50) ≈ 0.346
	for i, v := range w.Data() {
		if v < -limit || v > limit {
			t.Fatalf("element %d = %g outside ±%g", i, v, limit)
		}
	}
	// Degenerate fan sums clamp instead of dividing by zero.
	if z := XavierInit(rng, 0, 0, 4); z.Len() != 4 {
		t.Fatal("degenerate XavierInit shape")
	}
}

func TestParallelForCoversEveryIndex(t *testing.T) {
	old := SetWorkers(4)
	defer SetWorkers(old)
	n := 101
	hits := make([]int32, n)
	parallelFor(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

// TestConv2dInt8StridedMatchesNaive covers the generic (non-unit-stride)
// int8 im2col path against a direct convolution over the same codes:
// stride 2 with padding and a nonzero zero-point, folded with the exact
// same float32 expression the driver uses, so equality is bitwise.
func TestConv2dInt8StridedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	n, c, h, w := 2, 3, 9, 11
	cout, kh, kw := 5, 3, 3
	spec := ConvSpec{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}.Canon()
	x := RandUniform(rng, -1, 1, n, c, h, w)
	wq := randI8(rng, cout*c*kh*kw)
	qp := QuantParams{
		InScale: 1.0 / 32, InZP: 7,
		WScales: make([]float32, cout),
		RowSums: make([]int32, cout),
		Bias:    make([]float32, cout),
	}
	for oc := 0; oc < cout; oc++ {
		qp.WScales[oc] = float32(oc+2) / 400
		qp.Bias[oc] = float32(oc) - 2
		var s int32
		for _, v := range wq[oc*c*kh*kw : (oc+1)*c*kh*kw] {
			s += int32(v)
		}
		qp.RowSums[oc] = s
	}
	outShape := ConvOutShape(x.Shape(), []int{cout, c, kh, kw}, spec)
	oh, ow := outShape[2], outShape[3]

	xq := make([]int8, x.Len())
	QuantizeI8Into(xq, x.Data(), qp.InScale, qp.InZP)
	want := New(outShape...)
	for s := 0; s < n; s++ {
		for oc := 0; oc < cout; oc++ {
			scale := qp.InScale * qp.WScales[oc]
			corr := int32(qp.InZP) * qp.RowSums[oc]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc int32
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy := oy*spec.StrideH - spec.PadH + ky
								ix := ox*spec.StrideW - spec.PadW + kx
								code := qp.InZP
								if iy >= 0 && iy < h && ix >= 0 && ix < w {
									code = xq[((s*c+ci)*h+iy)*w+ix]
								}
								acc += int32(wq[((oc*c+ci)*kh+ky)*kw+kx]) * int32(code)
							}
						}
					}
					want.Data()[((s*cout+oc)*oh+oy)*ow+ox] = float32(acc-corr)*scale + qp.Bias[oc]
				}
			}
		}
	}

	got := New(outShape...)
	Conv2dInt8Into(got, x, wq, []int{cout, c, kh, kw}, qp, spec)
	if !got.Equal(want) {
		t.Fatal("strided int8 conv differs from naive reference")
	}
}

// TestGemmI8SerialDegenerate: zero-sized operands are exact no-ops or
// zero fills, never panics or stale data.
func TestGemmI8SerialDegenerate(t *testing.T) {
	ia := getIArena()
	defer ia.release()
	gemmI8Serial(nil, 0, nil, 0, nil, 0, false, 0, 3, 0, ia)
	dst := []int32{1, 2, 3, 4}
	gemmI8Serial(dst, 2, nil, 0, nil, 0, false, 2, 0, 2, ia)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("k=0 must zero dst, element %d = %d", i, v)
		}
	}
}

func TestQuantizeI8IntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	QuantizeI8Into(make([]int8, 2), make([]float32, 3), 1, 0)
}

// TestIArenaGrowthAndMarkGuards: takes that outgrow a section leave
// previously taken slices valid on the old array, and a restore whose
// mark predates a reallocation is a guarded no-op (rolling the offset
// back onto the fresh buffer would alias live slices).
func TestIArenaGrowthAndMarkGuards(t *testing.T) {
	ia := getIArena()
	defer ia.release()

	ia.reserve8(4)
	first8 := ia.take8(4)
	first8[0] = 42
	m8 := ia.mark8()
	grown8 := ia.take8(1 << 12) // forces reallocation
	grown8[0] = 1
	if first8[0] != 42 {
		t.Fatal("take8 growth invalidated a live slice")
	}
	off := ia.off8
	ia.restore8(m8)
	if ia.off8 != off {
		t.Fatal("restore8 across a reallocation must be a no-op")
	}

	ia.reserve16(4)
	first16 := ia.take16(4)
	first16[0] = 7
	m16 := ia.mark16()
	ia.take16(1 << 12)
	if first16[0] != 7 {
		t.Fatal("take16 growth invalidated a live slice")
	}
	off16 := ia.off16
	ia.restore16(m16)
	if ia.off16 != off16 {
		t.Fatal("restore16 across a reallocation must be a no-op")
	}

	// Same-generation restores do roll back (fresh arena with headroom
	// so the take can't trigger another reallocation).
	ib := getIArena()
	ib.reserve16(64)
	ib.take16(8)
	m := ib.mark16()
	ib.take16(8)
	ib.restore16(m)
	if ib.off16 != m.off {
		t.Fatal("same-generation restore16 must roll back")
	}
	ib.release()

	ia.reserve32(4)
	first32 := ia.take32(4)
	first32[0] = 9
	ia.take32(1 << 12)
	if first32[0] != 9 {
		t.Fatal("take32 growth invalidated a live slice")
	}
}
