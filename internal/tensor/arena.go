package tensor

import "sync"

// arena is a bump-allocated float32 scratch buffer reused across kernel
// calls via a sync.Pool. Kernels take() slices for im2col columns and
// GEMM pack panels instead of calling make, which removes the dominant
// allocation churn from campaign trials (every conv layer used to
// allocate a fresh col buffer per forward).
//
// Ownership rules (documented in DESIGN.md §10):
//
//   - getArena/arena.release bracket one kernel invocation on one
//     goroutine; arenas are never shared between goroutines.
//   - take returns UNINITIALIZED memory; the caller must fully overwrite
//     every element it reads (im2col and the pack routines do).
//   - taken slices are dead once the arena is released or restored past
//     their mark; nothing may retain them.
//   - reserve sizes the backing buffer up front so nested take calls
//     (conv column buffer + GEMM pack panels) never reallocate
//     mid-kernel.
type arena struct {
	buf []float32
	off int
	gen int // bumped when buf is reallocated; guards restore()
}

var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// getArena returns an empty arena from the pool.
func getArena() *arena {
	a := arenaPool.Get().(*arena)
	a.off = 0
	return a
}

// release resets the arena and returns it to the pool. The backing buffer
// is kept, so steady-state kernels allocate nothing.
func (a *arena) release() {
	a.off = 0
	arenaPool.Put(a)
}

// reserve ensures the backing buffer can serve at least n floats of
// take() without growing. Must be called before the first take (it may
// discard the current backing array).
func (a *arena) reserve(n int) {
	if len(a.buf) < n {
		a.buf = make([]float32, n)
		a.off = 0
		a.gen++
	}
}

// take returns an uninitialized scratch slice of length n. If the backing
// buffer is exhausted it grows; previously taken slices stay valid (they
// alias the old array) but restore() to marks taken before the growth
// becomes a no-op.
func (a *arena) take(n int) []float32 {
	if len(a.buf)-a.off < n {
		grown := 2 * len(a.buf)
		if grown < a.off+n {
			grown = a.off + n
		}
		a.buf = make([]float32, grown)
		a.off = 0
		a.gen++
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// arenaMark is a position in the arena to roll back to with restore.
type arenaMark struct{ off, gen int }

// mark records the current allocation point.
func (a *arena) mark() arenaMark { return arenaMark{off: a.off, gen: a.gen} }

// restore rolls the arena back to m, freeing everything taken since. If
// the buffer grew after the mark the rollback is skipped (the marked
// offset refers to the discarded array); the arena stays correct, merely
// larger.
func (a *arena) restore(m arenaMark) {
	if a.gen == m.gen {
		a.off = m.off
	}
}
