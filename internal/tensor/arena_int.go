package tensor

import "sync"

// iarena is the integer sibling of arena: bump-allocated int8/int16/int32
// scratch reused across int8-backend kernel calls via a sync.Pool. The
// int8 section holds quantized inputs, im2col columns, and the GEMM B
// pack panels (raw codes, widened at load by the kernel), the int16
// section the sign-extended A pack panels, and the int32 section the
// accumulator tiles. The ownership rules match arena exactly: one kernel
// invocation on one goroutine, take returns UNINITIALIZED memory, taken
// slices die at release/restore, and reserve sizes each section up front
// so nested takes never reallocate mid-kernel.
type iarena struct {
	b8   []int8
	off8 int
	gen8 int // bumped when b8 is reallocated; guards restore8()

	b16   []int16
	off16 int
	gen16 int // bumped when b16 is reallocated; guards restore16()

	b32   []int32
	off32 int
}

var iarenaPool = sync.Pool{New: func() any { return new(iarena) }}

// getIArena returns an empty integer arena from the pool.
func getIArena() *iarena {
	a := iarenaPool.Get().(*iarena)
	a.off8, a.off16, a.off32 = 0, 0, 0
	return a
}

// release resets the arena and returns it to the pool, keeping the
// backing buffers so steady-state kernels allocate nothing.
func (a *iarena) release() {
	a.off8, a.off16, a.off32 = 0, 0, 0
	iarenaPool.Put(a)
}

// reserve8/reserve16/reserve32 ensure the respective section can serve at
// least n elements of take without growing. Must be called before the
// section's first take.
func (a *iarena) reserve8(n int) {
	if len(a.b8) < n {
		a.b8 = make([]int8, n)
		a.off8 = 0
		a.gen8++
	}
}

func (a *iarena) reserve16(n int) {
	if len(a.b16) < n {
		a.b16 = make([]int16, n)
		a.off16 = 0
		a.gen16++
	}
}

func (a *iarena) reserve32(n int) {
	if len(a.b32) < n {
		a.b32 = make([]int32, n)
		a.off32 = 0
	}
}

// take8/take16/take32 return an uninitialized scratch slice of length n,
// growing the section if exhausted (previously taken slices stay valid on
// the old array).
func (a *iarena) take8(n int) []int8 {
	if len(a.b8)-a.off8 < n {
		grown := 2 * len(a.b8)
		if grown < a.off8+n {
			grown = a.off8 + n
		}
		a.b8 = make([]int8, grown)
		a.off8 = 0
		a.gen8++
	}
	s := a.b8[a.off8 : a.off8+n : a.off8+n]
	a.off8 += n
	return s
}

func (a *iarena) take16(n int) []int16 {
	if len(a.b16)-a.off16 < n {
		grown := 2 * len(a.b16)
		if grown < a.off16+n {
			grown = a.off16 + n
		}
		a.b16 = make([]int16, grown)
		a.off16 = 0
		a.gen16++
	}
	s := a.b16[a.off16 : a.off16+n : a.off16+n]
	a.off16 += n
	return s
}

func (a *iarena) take32(n int) []int32 {
	if len(a.b32)-a.off32 < n {
		grown := 2 * len(a.b32)
		if grown < a.off32+n {
			grown = a.off32 + n
		}
		a.b32 = make([]int32, grown)
		a.off32 = 0
	}
	s := a.b32[a.off32 : a.off32+n : a.off32+n]
	a.off32 += n
	return s
}

// iarenaMark is a position in the int8 or int16 section to roll back to.
// The int32 section is taken once per unit and never rolled back; the
// pack-panel takes (A in int16, B in int8) need marks because
// gemmI8Serial is called in a loop and must return its panels. The gen
// guard makes restore a no-op after a mid-call reallocation: rolling the
// offset back onto a fresh buffer would hand out memory still referenced
// through slices of the old one.
type iarenaMark struct{ off, gen int }

func (a *iarena) mark8() iarenaMark { return iarenaMark{off: a.off8, gen: a.gen8} }

func (a *iarena) restore8(m iarenaMark) {
	if a.gen8 == m.gen {
		a.off8 = m.off
	}
}

func (a *iarena) mark16() iarenaMark { return iarenaMark{off: a.off16, gen: a.gen16} }

func (a *iarena) restore16(m iarenaMark) {
	if a.gen16 == m.gen {
		a.off16 = m.off
	}
}
