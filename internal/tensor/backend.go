package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the number of goroutines heavy kernels (matmul, conv,
// pooling) may fan out to. 1 means strictly serial execution. The value is
// process-global because it models the execution platform (the paper's
// CPU-vs-GPU axis), not a per-call option.
var workers atomic.Int64

func init() {
	workers.Store(int64(runtime.NumCPU()))
}

// SetWorkers configures the kernel parallelism degree. n < 1 is clamped
// to 1 (serial). It returns the previous setting so callers (benchmarks,
// the Figure 3 harness) can restore it.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workers.Swap(int64(n)))
}

// Workers returns the current kernel parallelism degree.
func Workers() int { return int(workers.Load()) }

// parallelFor runs fn(i) for i in [0, n) using up to Workers() goroutines.
// With Workers()==1 (or small n) it degrades to a plain loop, keeping the
// serial backend free of goroutine overhead.
func parallelFor(n int, fn func(i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// parallelForChunks splits [0, n) into contiguous chunks and runs
// fn(lo, hi) per chunk. Preferred for kernels whose per-index work is tiny,
// where per-index dispatch overhead would dominate.
func parallelForChunks(n int, fn func(lo, hi int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
