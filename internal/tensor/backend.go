package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the number of goroutines heavy kernels (matmul, conv,
// pooling) may fan out to. 1 means strictly serial execution. The value is
// process-global because it models the execution platform (the paper's
// CPU-vs-GPU axis), not a per-call option.
var workers atomic.Int64

func init() {
	workers.Store(int64(runtime.NumCPU()))
}

// SetWorkers configures the kernel parallelism degree. n < 1 is clamped
// to 1 (serial). It returns the previous setting so callers (benchmarks,
// the Figure 3 harness) can restore it.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workers.Swap(int64(n)))
}

// Workers returns the current kernel parallelism degree.
func Workers() int { return int(workers.Load()) }

// --- persistent worker pool ---------------------------------------------
//
// Kernels used to spawn fresh goroutines on every parallelFor call, so a
// small conv layer paid goroutine spawn+join per layer per trial. The
// pool below keeps long-lived workers parked on a channel; a parallel
// region enqueues one job and the submitter plus any woken workers claim
// chunks from it via an atomic cursor.
//
// Deadlock freedom under nesting (a conv parallelized over samples whose
// inner GEMM parallelizes again): nobody ever blocks on an *unclaimed*
// chunk. The submitter runs claimChunks itself before waiting, so chunks
// that no pool worker picked up are executed inline; the final wait only
// covers chunks some worker is actively executing, and workers never
// block except to park on the empty queue. By induction over nesting
// depth every claimed chunk terminates, hence every wait does.

// parJob is one parallel region: fn over [0,n) in nchunk chunks of size
// chunk (the last one short).
type parJob struct {
	fn     func(lo, hi int)
	n      int
	chunk  int
	nchunk int64
	next   atomic.Int64
	wg     sync.WaitGroup
}

// claimChunks executes chunks of j until none are left unclaimed.
func (j *parJob) claimChunks() {
	for {
		i := j.next.Add(1) - 1
		if i >= j.nchunk {
			return
		}
		lo := int(i) * j.chunk
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
		j.wg.Done()
	}
}

// poolQueue wakes parked workers. The buffer lets a submitter enqueue
// without blocking even when every worker is busy; a worker that drains
// a stale (already finished) job just parks again.
var poolQueue = make(chan *parJob, 256)

// poolWorkers counts live pool goroutines; they are spawned on demand
// (up to the requested fan-out) and never exit.
var poolWorkers atomic.Int64

// maxPoolWorkers caps the pool size; SetWorkers values beyond it still
// work, the extra chunks are simply claimed by the submitter.
const maxPoolWorkers = 64

func poolWorker() {
	for j := range poolQueue {
		j.claimChunks()
	}
}

// ensurePoolWorkers grows the pool to at least n goroutines.
func ensurePoolWorkers(n int) {
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	for {
		cur := poolWorkers.Load()
		if cur >= int64(n) {
			return
		}
		if poolWorkers.CompareAndSwap(cur, cur+1) {
			go poolWorker()
		}
	}
}

// runParallel splits [0, n) into chunks of the given size and executes
// fn(lo, hi) across the submitter plus up to w-1 pool workers.
func runParallel(n, chunk, w int, fn func(lo, hi int)) {
	j := &parJob{fn: fn, n: n, chunk: chunk}
	j.nchunk = int64((n + chunk - 1) / chunk)
	j.wg.Add(int(j.nchunk))
	ensurePoolWorkers(w - 1)
	// Wake up to w-1 workers. Non-blocking: if the queue is full the
	// submitter (and whichever workers drain the queue) still make
	// progress by claiming chunks directly.
	for i := 0; i < w-1; i++ {
		select {
		case poolQueue <- j:
		default:
			i = w // queue full; stop enqueueing
		}
	}
	j.claimChunks()
	j.wg.Wait()
}

// parallelFor runs fn(i) for i in [0, n) using up to Workers() goroutines
// with per-index (work-stealing) dispatch. With Workers()==1 (or n<=1) it
// degrades to a plain loop, keeping the serial backend free of dispatch
// overhead.
func parallelFor(n int, fn func(i int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	runParallel(n, 1, w, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// parallelForChunks splits [0, n) into contiguous chunks and runs
// fn(lo, hi) per chunk. Preferred for kernels whose per-index work is tiny,
// where per-index dispatch overhead would dominate.
func parallelForChunks(n int, fn func(lo, hi int)) {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	runParallel(n, (n+w-1)/w, w, fn)
}
