package tensor

import "fmt"

// Batched-trial helpers. Fault-injection campaigns pack K independent
// trials that share one clean input into a single batched forward pass:
// the input is tiled across K batch lanes once, and after inference each
// lane's logits are viewed individually. Both directions preserve bit
// patterns exactly — tiling is a memcpy per lane and Lane is a zero-copy
// view — which is what lets the campaign engine promise byte-identical
// aggregates between the sequential and batched paths.

// TileBatch replicates a batch-1 tensor across n batch lanes: the result
// has shape [n, rest...] and every lane is a bitwise copy of t. It panics
// if t has no batch dimension, if its batch is not 1, or if n < 1 — a
// tiling request for a tensor that already carries a batch is a
// programming error in the calling engine, not a runtime condition.
func (t *Tensor) TileBatch(n int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: TileBatch of a scalar tensor")
	}
	if t.shape[0] != 1 {
		panic(fmt.Sprintf("tensor: TileBatch of shape %v (batch must be 1)", t.shape))
	}
	if n < 1 {
		panic(fmt.Sprintf("tensor: TileBatch with %d lanes", n))
	}
	shape := append([]int(nil), t.shape...)
	shape[0] = n
	out := New(shape...)
	stride := len(t.data)
	for lane := 0; lane < n; lane++ {
		copy(out.data[lane*stride:(lane+1)*stride], t.data)
	}
	return out
}

// Lane returns a zero-copy batch-1 view of lane i: shape [1, rest...]
// over the same backing storage, so reading the view reads the batched
// tensor's lane bits directly. Mutating the view mutates the parent. It
// panics when i is outside the batch dimension.
func (t *Tensor) Lane(i int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: Lane of a scalar tensor")
	}
	if i < 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: lane %d outside batch %d", i, t.shape[0]))
	}
	stride := 1
	for _, d := range t.shape[1:] {
		stride *= d
	}
	shape := append([]int{1}, t.shape[1:]...)
	return FromSlice(t.data[i*stride:(i+1)*stride:(i+1)*stride], shape...)
}
