package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestTileBatchCopiesBits(t *testing.T) {
	src := New(1, 2, 3)
	for i := range src.Data() {
		// Include a NaN payload and a denormal so the check is bitwise,
		// not arithmetic.
		switch i {
		case 0:
			src.Data()[i] = math.Float32frombits(0x7FC00001)
		case 1:
			src.Data()[i] = math.Float32frombits(0x00000001)
		default:
			src.Data()[i] = float32(i) * 0.37
		}
	}
	tiled := src.TileBatch(4)
	if got := tiled.Shape(); got[0] != 4 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("tiled shape %v", got)
	}
	for lane := 0; lane < 4; lane++ {
		for i, v := range src.Data() {
			if math.Float32bits(tiled.Data()[lane*6+i]) != math.Float32bits(v) {
				t.Fatalf("lane %d elem %d: bits differ", lane, i)
			}
		}
	}
	// The tile is a copy: mutating it must not touch the source.
	tiled.SetFlat(2, 99)
	if src.AtFlat(2) == 99 {
		t.Fatal("TileBatch aliased the source")
	}
}

func TestTileBatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"batch2":   func() { New(2, 3).TileBatch(2) },
		"scalar":   func() { New().TileBatch(2) },
		"lanes0":   func() { New(1, 3).TileBatch(0) },
		"lanesNeg": func() { New(1, 3).TileBatch(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLaneViewsShareStorage(t *testing.T) {
	b := New(3, 2, 2)
	for i := range b.Data() {
		b.Data()[i] = float32(i)
	}
	for lane := 0; lane < 3; lane++ {
		v := b.Lane(lane)
		if got := v.Shape(); got[0] != 1 || got[1] != 2 || got[2] != 2 {
			t.Fatalf("lane %d shape %v", lane, got)
		}
		for i := 0; i < 4; i++ {
			if v.AtFlat(i) != float32(lane*4+i) {
				t.Fatalf("lane %d elem %d = %g", lane, i, v.AtFlat(i))
			}
		}
	}
	// Views alias the parent in both directions.
	b.Lane(1).SetFlat(0, -5)
	if b.AtFlat(4) != -5 {
		t.Fatal("Lane view does not alias parent")
	}
	// A view's capacity is clamped to its lane, so appends through the
	// backing slice cannot silently bleed into the next lane.
	if cap(b.Lane(0).Data()) != 4 {
		t.Fatalf("lane cap %d", cap(b.Lane(0).Data()))
	}
}

func TestLanePanicsOutOfRange(t *testing.T) {
	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("lane %d: expected panic", i)
				}
			}()
			New(3, 2).Lane(i)
		}()
	}
}

func TestTileBatchLaneRoundTrip(t *testing.T) {
	src := RandUniform(rand.New(rand.NewSource(9)), -2, 2, 1, 3, 4, 4)
	tiled := src.TileBatch(5)
	for lane := 0; lane < 5; lane++ {
		if !tiled.Lane(lane).Equal(src) {
			t.Fatalf("lane %d round trip mismatch", lane)
		}
	}
}
