package tensor

import (
	"math/rand"
	"testing"
)

// Kernel benchmarks across paper-relevant shapes. The conv shapes mirror
// the AlexNet-style stacks the Figure 3/4 studies run at 32×32: an early
// layer (few input channels, large spatial extent) and a late layer (many
// channels, small extent). BENCH_kernels.json records these before and
// after the blocked-GEMM backend landed.

func benchGEMM(b *testing.B, m, k, n int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	a := RandUniform(rng, -1, 1, m, k)
	bb := RandUniform(rng, -1, 1, k, n)
	b.SetBytes(int64(2 * m * k * n * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, bb)
	}
}

func BenchmarkGEMM_Square256(b *testing.B)  { benchGEMM(b, 256, 256, 256) }
func BenchmarkGEMM_ConvEarly(b *testing.B)  { benchGEMM(b, 16, 27, 1024) }
func BenchmarkGEMM_ConvMid(b *testing.B)    { benchGEMM(b, 32, 144, 256) }
func BenchmarkGEMM_ConvLate(b *testing.B)   { benchGEMM(b, 48, 432, 64) }
func BenchmarkGEMM_LinearHead(b *testing.B) { benchGEMM(b, 32, 512, 10) }

// The weight-gradient kernel walks Aᵀ; before the packed backend this was
// a strided (cache-hostile) column walk.
func BenchmarkGEMM_TransA_WeightGrad(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	k, m, n := 32, 432, 256 // dW = gOutᵀ-shaped: A [coutG, l]ᵀ × B [coutG, kdim]
	a := RandUniform(rng, -1, 1, k, m)
	bb := RandUniform(rng, -1, 1, k, n)
	dst := New(m, n)
	b.SetBytes(int64(2 * m * k * n * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		MatMulTransAAcc(dst, a, bb)
	}
}

func BenchmarkGEMM_TransB_InputGrad(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 32, 256, 432
	a := RandUniform(rng, -1, 1, m, k)
	bb := RandUniform(rng, -1, 1, n, k)
	dst := New(m, n)
	b.SetBytes(int64(2 * m * k * n * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(dst, a, bb)
	}
}

func benchConvForward(b *testing.B, batch, cin, cout, size, kernel, stride, pad, groups int) {
	b.Helper()
	rng := rand.New(rand.NewSource(4))
	x := RandUniform(rng, -1, 1, batch, cin, size, size)
	w := RandUniform(rng, -1, 1, cout, cin/max1(groups), kernel, kernel)
	bias := RandUniform(rng, -1, 1, cout)
	spec := ConvSpec{StrideH: stride, StrideW: stride, PadH: pad, PadW: pad, Groups: groups}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2d(x, w, bias, spec)
	}
}

func max1(g int) int {
	if g < 1 {
		return 1
	}
	return g
}

// AlexNet-style early layer: 3→16 channels over 32×32.
func BenchmarkConvForward_AlexEarly(b *testing.B) { benchConvForward(b, 1, 3, 16, 32, 3, 1, 1, 1) }

// AlexNet-style late layer: 48→48 channels over 8×8.
func BenchmarkConvForward_AlexLate(b *testing.B) { benchConvForward(b, 1, 48, 48, 8, 3, 1, 1, 1) }

// The large-GEMM conv case: per-sample GEMM is 64×576×256.
func BenchmarkConvForward_Large(b *testing.B) { benchConvForward(b, 2, 64, 64, 16, 3, 1, 1, 1) }

// Grouped/depthwise shape (MobileNet-style): many tiny GEMMs.
func BenchmarkConvForward_Depthwise(b *testing.B) { benchConvForward(b, 1, 32, 32, 16, 3, 1, 1, 32) }

// Batched early layer: the N×groups parallel axis has 8 units of work.
func BenchmarkConvForward_Batch8(b *testing.B) { benchConvForward(b, 8, 16, 32, 16, 3, 1, 1, 1) }

func BenchmarkConvBackward_AlexLate(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := RandUniform(rng, -1, 1, 1, 48, 8, 8)
	w := RandUniform(rng, -1, 1, 48, 48, 3, 3)
	spec := ConvSpec{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1}
	gradOut := RandUniform(rng, -1, 1, ConvOutShape(x.Shape(), w.Shape(), spec)...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2dBackward(x, w, true, gradOut, spec, true)
	}
}
