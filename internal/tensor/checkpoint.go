package tensor

import "container/list"

// CheckpointStore holds deep-copied activation snapshots keyed by
// (item, point) — for campaigns, (sample index, chain cut index) — under
// a byte budget. It is the backing store for clean-prefix activation
// reuse: each trial checkpoints the boundary activation its injected
// suffix resumes from, and later trials on the same (item, point) skip
// the prefix entirely.
//
// The store is arena-style: snapshot buffers are recycled through a
// per-size free list when entries are evicted, so a steady-state campaign
// (a handful of distinct boundary shapes, cycling samples) stops
// allocating after warm-up. Eviction is least-recently-used, driven by
// the byte budget.
//
// A CheckpointStore is confined to one goroutine — campaign workers each
// own one, mirroring how they own their model replica and injector.
type CheckpointStore struct {
	budget int64
	used   int64

	entries map[ckKey]*list.Element
	lru     *list.List // front = most recently used
	free    map[int][][]float32

	evictions int64
}

type ckKey struct{ item, point int }

type ckEntry struct {
	key ckKey
	t   *Tensor
	// costNs is the time the snapshotted prefix took to compute; cache
	// hits report it as the time saved by not recomputing.
	costNs int64
}

// NewCheckpointStore returns a store that holds at most budgetBytes of
// snapshot data (4 bytes per float32 element). A non-positive budget
// stores nothing, turning Put into a pass-through.
func NewCheckpointStore(budgetBytes int64) *CheckpointStore {
	return &CheckpointStore{
		budget:  budgetBytes,
		entries: make(map[ckKey]*list.Element),
		lru:     list.New(),
		free:    make(map[int][][]float32),
	}
}

// Get returns the snapshot for (item, point), the nanoseconds its
// original computation cost, and whether it was present. A hit marks the
// entry most-recently-used. The returned tensor is owned by the store:
// callers may read it and feed it to forward passes, but must not mutate
// it or retain it across a Put.
func (s *CheckpointStore) Get(item, point int) (*Tensor, int64, bool) {
	el, ok := s.entries[ckKey{item, point}]
	if !ok {
		return nil, 0, false
	}
	s.lru.MoveToFront(el)
	e := el.Value.(*ckEntry)
	return e.t, e.costNs, true
}

// Put snapshots src (a deep copy) under (item, point) and returns the
// stored tensor. When src does not fit the budget — even after evicting
// everything else — it is returned as-is without being stored, which is
// always safe for the caller's current trial: src stays valid until the
// model's next forward pass. Re-putting an existing key refreshes its
// snapshot in place.
func (s *CheckpointStore) Put(item, point int, src *Tensor, costNs int64) *Tensor {
	size := int64(src.Len()) * 4
	if size > s.budget {
		return src
	}
	key := ckKey{item, point}
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*ckEntry)
		if e.t.Len() == src.Len() {
			copy(e.t.Data(), src.Data())
			e.t.shape = append(e.t.shape[:0], src.shape...)
			e.costNs = costNs
			s.lru.MoveToFront(el)
			return e.t
		}
		s.remove(el)
	}
	for s.used+size > s.budget {
		s.remove(s.lru.Back())
		s.evictions++
	}
	buf := s.takeBuf(src.Len())
	copy(buf, src.Data())
	e := &ckEntry{key: key, t: FromSlice(buf, src.Shape()...), costNs: costNs}
	s.entries[key] = s.lru.PushFront(e)
	s.used += size
	return e.t
}

// remove evicts one entry, recycling its buffer into the free list.
func (s *CheckpointStore) remove(el *list.Element) {
	e := el.Value.(*ckEntry)
	s.lru.Remove(el)
	delete(s.entries, e.key)
	s.used -= int64(e.t.Len()) * 4
	n := e.t.Len()
	s.free[n] = append(s.free[n], e.t.Data())
}

// takeBuf reuses a recycled buffer of exactly n floats, or allocates one.
func (s *CheckpointStore) takeBuf(n int) []float32 {
	if bufs := s.free[n]; len(bufs) > 0 {
		buf := bufs[len(bufs)-1]
		s.free[n] = bufs[:len(bufs)-1]
		return buf
	}
	return make([]float32, n)
}

// Len returns the number of stored snapshots.
func (s *CheckpointStore) Len() int { return len(s.entries) }

// UsedBytes returns the bytes currently held by live snapshots.
func (s *CheckpointStore) UsedBytes() int64 { return s.used }

// Evictions returns how many snapshots the budget has pushed out.
func (s *CheckpointStore) Evictions() int64 { return s.evictions }
