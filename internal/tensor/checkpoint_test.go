package tensor

import (
	"math"
	"testing"
)

func ckTensor(n int, base float32) *Tensor {
	t := New(1, n)
	for i := range t.Data() {
		t.Data()[i] = base + float32(i)
	}
	return t
}

func TestCheckpointStorePutGet(t *testing.T) {
	s := NewCheckpointStore(1 << 20)
	src := ckTensor(8, 1)
	stored := s.Put(3, 2, src, 500)
	if stored == src {
		t.Fatal("Put must deep-copy, not alias the source")
	}
	// Mutating the source must not leak into the snapshot.
	src.Data()[0] = -99
	got, cost, ok := s.Get(3, 2)
	if !ok || cost != 500 {
		t.Fatalf("Get = (%v, %d, %v), want hit with cost 500", got, cost, ok)
	}
	if math.Float32bits(got.Data()[0]) != math.Float32bits(float32(1)) {
		t.Fatalf("snapshot[0] = %v, want 1 (deep copy)", got.Data()[0])
	}
	if got.Dim(0) != 1 || got.Dim(1) != 8 {
		t.Fatalf("snapshot shape %v, want [1 8]", got.Shape())
	}
	if _, _, ok := s.Get(3, 5); ok {
		t.Fatal("unknown point must miss")
	}
	if s.Len() != 1 || s.UsedBytes() != 32 {
		t.Fatalf("Len=%d Used=%d, want 1/32", s.Len(), s.UsedBytes())
	}
}

func TestCheckpointStoreRefreshInPlace(t *testing.T) {
	s := NewCheckpointStore(1 << 20)
	first := s.Put(1, 1, ckTensor(6, 0), 10)
	second := s.Put(1, 1, ckTensor(6, 100), 20)
	if first != second {
		t.Fatal("same-size re-put must refresh the snapshot in place")
	}
	got, cost, _ := s.Get(1, 1)
	if got.Data()[0] != 100 || cost != 20 {
		t.Fatalf("refreshed snapshot = %v cost %d, want 100/20", got.Data()[0], cost)
	}
	// Different-size re-put replaces the entry without doubling the budget.
	s.Put(1, 1, ckTensor(12, 0), 30)
	if s.Len() != 1 || s.UsedBytes() != 48 {
		t.Fatalf("Len=%d Used=%d after resize, want 1/48", s.Len(), s.UsedBytes())
	}
}

func TestCheckpointStoreLRUEviction(t *testing.T) {
	// Budget fits exactly two 8-float snapshots.
	s := NewCheckpointStore(64)
	s.Put(1, 1, ckTensor(8, 0), 1)
	s.Put(2, 1, ckTensor(8, 0), 2)
	s.Get(1, 1) // touch 1 so 2 becomes the LRU victim
	s.Put(3, 1, ckTensor(8, 0), 3)
	if _, _, ok := s.Get(2, 1); ok {
		t.Fatal("LRU entry (2,1) should have been evicted")
	}
	if _, _, ok := s.Get(1, 1); !ok {
		t.Fatal("recently used entry (1,1) must survive")
	}
	if s.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions())
	}
}

func TestCheckpointStoreOverBudgetPassThrough(t *testing.T) {
	s := NewCheckpointStore(16)
	src := ckTensor(8, 0) // 32 bytes > 16-byte budget
	if got := s.Put(1, 1, src, 1); got != src {
		t.Fatal("over-budget Put must return the source unstored")
	}
	if s.Len() != 0 || s.UsedBytes() != 0 {
		t.Fatal("over-budget Put must store nothing")
	}
	// Non-positive budget: everything passes through.
	empty := NewCheckpointStore(0)
	if got := empty.Put(1, 1, ckTensor(1, 0), 1); empty.Len() != 0 || got == nil {
		t.Fatal("zero-budget store must pass through")
	}
}

func TestCheckpointStoreRecyclesBuffers(t *testing.T) {
	s := NewCheckpointStore(32) // one 8-float snapshot at a time
	first := s.Put(1, 1, ckTensor(8, 0), 1)
	buf := &first.Data()[0]
	s.Put(2, 1, ckTensor(8, 50), 2) // evicts (1,1), should reuse its buffer
	got, _, ok := s.Get(2, 1)
	if !ok {
		t.Fatal("(2,1) must be stored")
	}
	if &got.Data()[0] != buf {
		t.Fatal("evicted buffer was not recycled for the same-size snapshot")
	}
	if got.Data()[3] != 53 {
		t.Fatalf("recycled snapshot data %v, want 53", got.Data()[3])
	}
}
