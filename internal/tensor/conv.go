package tensor

import "fmt"

// ConvSpec describes the geometry of a 2-D convolution.
type ConvSpec struct {
	StrideH, StrideW int
	PadH, PadW       int
	Groups           int
}

// Canon returns the spec with zero values replaced by their defaults
// (stride 1, pad 0, groups 1).
func (s ConvSpec) Canon() ConvSpec {
	if s.StrideH == 0 {
		s.StrideH = 1
	}
	if s.StrideW == 0 {
		s.StrideW = 1
	}
	if s.Groups == 0 {
		s.Groups = 1
	}
	return s
}

// OutSize returns the output spatial size for an input of size in with
// kernel k under this spec (per dimension).
func convOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// ConvOutShape returns the output shape [N, Cout, OH, OW] for an input of
// shape [N, C, H, W] and weight of shape [Cout, C/groups, KH, KW].
func ConvOutShape(inShape, wShape []int, spec ConvSpec) []int {
	spec = spec.Canon()
	oh := convOutSize(inShape[2], wShape[2], spec.StrideH, spec.PadH)
	ow := convOutSize(inShape[3], wShape[3], spec.StrideW, spec.PadW)
	return []int{inShape[0], wShape[0], oh, ow}
}

func checkConvShapes(x, w, bias *Tensor, spec ConvSpec) ConvSpec {
	spec = spec.Canon()
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2d input must be [N,C,H,W], got %v", x.shape))
	}
	if w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2d weight must be [Cout,Cin/g,KH,KW], got %v", w.shape))
	}
	c := x.shape[1]
	cout, cg := w.shape[0], w.shape[1]
	if c%spec.Groups != 0 || cout%spec.Groups != 0 {
		panic(fmt.Sprintf("tensor: Conv2d channels C=%d Cout=%d not divisible by groups=%d", c, cout, spec.Groups))
	}
	if cg != c/spec.Groups {
		panic(fmt.Sprintf("tensor: Conv2d weight per-group channels %d != C/groups = %d", cg, c/spec.Groups))
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != cout) {
		panic(fmt.Sprintf("tensor: Conv2d bias shape %v does not match Cout=%d", bias.shape, cout))
	}
	oh := convOutSize(x.shape[2], w.shape[2], spec.StrideH, spec.PadH)
	ow := convOutSize(x.shape[3], w.shape[3], spec.StrideW, spec.PadW)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2d output size %dx%d not positive for input %v kernel %v spec %+v", oh, ow, x.shape, w.shape, spec))
	}
	return spec
}

// im2colInto unrolls one sample's group slice into col [Cg*KH*KW, OH*OW].
// img is the [C, H, W] sample slice, cLo the first channel of the group.
func im2colInto(col []float32, img []float32, c0, cg, h, wd, kh, kw, oh, ow int, spec ConvSpec) {
	l := oh * ow
	for c := 0; c < cg; c++ {
		chImg := img[(c0+c)*h*wd : (c0+c+1)*h*wd]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := col[((c*kh+ky)*kw+kx)*l : ((c*kh+ky)*kw+kx+1)*l]
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.StrideH - spec.PadH + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[oy*ow+ox] = 0
						}
						continue
					}
					base := iy * wd
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.StrideW - spec.PadW + kx
						if ix < 0 || ix >= wd {
							row[oy*ow+ox] = 0
						} else {
							row[oy*ow+ox] = chImg[base+ix]
						}
					}
				}
			}
		}
	}
}

// col2imAccInto scatter-adds a col gradient [Cg*KH*KW, OH*OW] back into
// the img gradient slice [C, H, W] for one sample's group.
func col2imAccInto(imgGrad []float32, col []float32, c0, cg, h, wd, kh, kw, oh, ow int, spec ConvSpec) {
	l := oh * ow
	for c := 0; c < cg; c++ {
		chGrad := imgGrad[(c0+c)*h*wd : (c0+c+1)*h*wd]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := col[((c*kh+ky)*kw+kx)*l : ((c*kh+ky)*kw+kx+1)*l]
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.StrideH - spec.PadH + ky
					if iy < 0 || iy >= h {
						continue
					}
					base := iy * wd
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.StrideW - spec.PadW + kx
						if ix < 0 || ix >= wd {
							continue
						}
						chGrad[base+ix] += row[oy*ow+ox]
					}
				}
			}
		}
	}
}

// Conv2d computes a 2-D convolution (technically cross-correlation, as in
// every deep-learning framework) of x [N,C,H,W] with weight
// [Cout,C/groups,KH,KW] and optional bias [Cout], using im2col + GEMM.
func Conv2d(x, w, bias *Tensor, spec ConvSpec) *Tensor {
	spec = checkConvShapes(x, w, bias, spec)
	n, c, h, wd := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	cout, cg, kh, kw := w.shape[0], w.shape[1], w.shape[2], w.shape[3]
	oh := convOutSize(h, kh, spec.StrideH, spec.PadH)
	ow := convOutSize(wd, kw, spec.StrideW, spec.PadW)
	g := spec.Groups
	coutG := cout / g
	l := oh * ow
	kdim := cg * kh * kw

	out := New(n, cout, oh, ow)
	col := make([]float32, kdim*l)
	for s := 0; s < n; s++ {
		img := x.data[s*c*h*wd : (s+1)*c*h*wd]
		outImg := out.data[s*cout*l : (s+1)*cout*l]
		for gi := 0; gi < g; gi++ {
			im2colInto(col, img, gi*cg, cg, h, wd, kh, kw, oh, ow, spec)
			wg := w.data[gi*coutG*kdim : (gi+1)*coutG*kdim]
			og := outImg[gi*coutG*l : (gi+1)*coutG*l]
			matMulInto(og, wg, col, coutG, kdim, l)
		}
		if bias != nil {
			for oc := 0; oc < cout; oc++ {
				b := bias.data[oc]
				row := outImg[oc*l : (oc+1)*l]
				for i := range row {
					row[i] += b
				}
			}
		}
	}
	return out
}

// Conv2dGrads holds the result of Conv2dBackward.
type Conv2dGrads struct {
	Input  *Tensor // dL/dx, shape of x
	Weight *Tensor // dL/dW, shape of w
	Bias   *Tensor // dL/db, shape [Cout]; nil when bias was nil
}

// Conv2dBackward computes the gradients of a convolution given the
// upstream gradient gradOut (shape of the forward output). Pass
// needInput=false to skip the input-gradient computation for the first
// layer of a network.
func Conv2dBackward(x, w *Tensor, hasBias bool, gradOut *Tensor, spec ConvSpec, needInput bool) Conv2dGrads {
	spec = checkConvShapes(x, w, nil, spec)
	n, c, h, wd := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	cout, cg, kh, kw := w.shape[0], w.shape[1], w.shape[2], w.shape[3]
	oh := convOutSize(h, kh, spec.StrideH, spec.PadH)
	ow := convOutSize(wd, kw, spec.StrideW, spec.PadW)
	if !sameShape(gradOut.shape, []int{n, cout, oh, ow}) {
		panic(fmt.Sprintf("tensor: Conv2dBackward gradOut shape %v != expected %v", gradOut.shape, []int{n, cout, oh, ow}))
	}
	g := spec.Groups
	coutG := cout / g
	l := oh * ow
	kdim := cg * kh * kw

	grads := Conv2dGrads{Weight: New(w.shape...)}
	if hasBias {
		grads.Bias = New(cout)
		for s := 0; s < n; s++ {
			for oc := 0; oc < cout; oc++ {
				row := gradOut.data[(s*cout+oc)*l : (s*cout+oc+1)*l]
				var acc float32
				for _, v := range row {
					acc += v
				}
				grads.Bias.data[oc] += acc
			}
		}
	}
	if needInput {
		grads.Input = New(x.shape...)
	}

	col := make([]float32, kdim*l)
	colGrad := make([]float32, kdim*l)
	for s := 0; s < n; s++ {
		img := x.data[s*c*h*wd : (s+1)*c*h*wd]
		gOutImg := gradOut.data[s*cout*l : (s+1)*cout*l]
		for gi := 0; gi < g; gi++ {
			im2colInto(col, img, gi*cg, cg, h, wd, kh, kw, oh, ow, spec)
			wg := w.data[gi*coutG*kdim : (gi+1)*coutG*kdim]
			gwg := grads.Weight.data[gi*coutG*kdim : (gi+1)*coutG*kdim]
			gog := gOutImg[gi*coutG*l : (gi+1)*coutG*l]
			// dW_g += gOut_g [coutG, l] × colᵀ [l, kdim]
			matMulTransBInto(gwg, gog, col, coutG, l, kdim)
			if needInput {
				// colGrad = W_gᵀ [kdim, coutG] × gOut_g [coutG, l]
				for i := range colGrad {
					colGrad[i] = 0
				}
				matMulTransAInto(colGrad, wg, gog, coutG, kdim, l)
				imgGrad := grads.Input.data[s*c*h*wd : (s+1)*c*h*wd]
				col2imAccInto(imgGrad, colGrad, gi*cg, cg, h, wd, kh, kw, oh, ow, spec)
			}
		}
	}
	return grads
}
