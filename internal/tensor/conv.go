package tensor

import "fmt"

// ConvSpec describes the geometry of a 2-D convolution.
type ConvSpec struct {
	StrideH, StrideW int
	PadH, PadW       int
	Groups           int
}

// Canon returns the spec with zero values replaced by their defaults
// (stride 1, pad 0, groups 1).
func (s ConvSpec) Canon() ConvSpec {
	if s.StrideH == 0 {
		s.StrideH = 1
	}
	if s.StrideW == 0 {
		s.StrideW = 1
	}
	if s.Groups == 0 {
		s.Groups = 1
	}
	return s
}

// OutSize returns the output spatial size for an input of size in with
// kernel k under this spec (per dimension).
func convOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}

// ConvOutShape returns the output shape [N, Cout, OH, OW] for an input of
// shape [N, C, H, W] and weight of shape [Cout, C/groups, KH, KW].
func ConvOutShape(inShape, wShape []int, spec ConvSpec) []int {
	spec = spec.Canon()
	oh := convOutSize(inShape[2], wShape[2], spec.StrideH, spec.PadH)
	ow := convOutSize(inShape[3], wShape[3], spec.StrideW, spec.PadW)
	return []int{inShape[0], wShape[0], oh, ow}
}

func checkConvShapes(x, w, bias *Tensor, spec ConvSpec) ConvSpec {
	spec = spec.Canon()
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2d input must be [N,C,H,W], got %v", x.shape))
	}
	if w.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2d weight must be [Cout,Cin/g,KH,KW], got %v", w.shape))
	}
	c := x.shape[1]
	cout, cg := w.shape[0], w.shape[1]
	if c%spec.Groups != 0 || cout%spec.Groups != 0 {
		panic(fmt.Sprintf("tensor: Conv2d channels C=%d Cout=%d not divisible by groups=%d", c, cout, spec.Groups))
	}
	if cg != c/spec.Groups {
		panic(fmt.Sprintf("tensor: Conv2d weight per-group channels %d != C/groups = %d", cg, c/spec.Groups))
	}
	if bias != nil && (bias.Rank() != 1 || bias.shape[0] != cout) {
		panic(fmt.Sprintf("tensor: Conv2d bias shape %v does not match Cout=%d", bias.shape, cout))
	}
	oh := convOutSize(x.shape[2], w.shape[2], spec.StrideH, spec.PadH)
	ow := convOutSize(x.shape[3], w.shape[3], spec.StrideW, spec.PadW)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2d output size %dx%d not positive for input %v kernel %v spec %+v", oh, ow, x.shape, w.shape, spec))
	}
	return spec
}

// im2colInto unrolls one sample's group slice into col [Cg*KH*KW, OH*OW].
// img is the [C, H, W] sample slice, cLo the first channel of the group.
func im2colInto(col []float32, img []float32, c0, cg, h, wd, kh, kw, oh, ow int, spec ConvSpec) {
	l := oh * ow
	for c := 0; c < cg; c++ {
		chImg := img[(c0+c)*h*wd : (c0+c+1)*h*wd]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := col[((c*kh+ky)*kw+kx)*l : ((c*kh+ky)*kw+kx+1)*l]
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.StrideH - spec.PadH + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[oy*ow+ox] = 0
						}
						continue
					}
					base := iy * wd
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.StrideW - spec.PadW + kx
						if ix < 0 || ix >= wd {
							row[oy*ow+ox] = 0
						} else {
							row[oy*ow+ox] = chImg[base+ix]
						}
					}
				}
			}
		}
	}
}

// col2imAccInto scatter-adds a col gradient [Cg*KH*KW, OH*OW] back into
// the img gradient slice [C, H, W] for one sample's group.
func col2imAccInto(imgGrad []float32, col []float32, c0, cg, h, wd, kh, kw, oh, ow int, spec ConvSpec) {
	l := oh * ow
	for c := 0; c < cg; c++ {
		chGrad := imgGrad[(c0+c)*h*wd : (c0+c+1)*h*wd]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := col[((c*kh+ky)*kw+kx)*l : ((c*kh+ky)*kw+kx+1)*l]
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.StrideH - spec.PadH + ky
					if iy < 0 || iy >= h {
						continue
					}
					base := iy * wd
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.StrideW - spec.PadW + kx
						if ix < 0 || ix >= wd {
							continue
						}
						chGrad[base+ix] += row[oy*ow+ox]
					}
				}
			}
		}
	}
}

// Conv2d computes a 2-D convolution (technically cross-correlation, as in
// every deep-learning framework) of x [N,C,H,W] with weight
// [Cout,C/groups,KH,KW] and optional bias [Cout], using im2col + GEMM.
func Conv2d(x, w, bias *Tensor, spec ConvSpec) *Tensor {
	spec = checkConvShapes(x, w, bias, spec)
	out := New(ConvOutShape(x.shape, w.shape, spec)...)
	conv2dInto(out, x, w, bias, spec)
	return out
}

// Conv2dInto is Conv2d writing into a caller-provided dst of shape
// ConvOutShape(x, w, spec). It lets layers reuse an output buffer across
// forward passes instead of allocating one per call.
func Conv2dInto(dst, x, w, bias *Tensor, spec ConvSpec) {
	spec = checkConvShapes(x, w, bias, spec)
	want := ConvOutShape(x.shape, w.shape, spec)
	if !sameShape(dst.shape, want) {
		panic(fmt.Sprintf("tensor: Conv2dInto dst shape %v != expected %v", dst.shape, want))
	}
	conv2dInto(dst, x, w, bias, spec)
}

// conv2dInto is the forward kernel; spec must be canonical and shapes
// checked. Work is parallelized over the N×groups axis — each (sample,
// group) unit owns a disjoint slab of out, its own im2col scratch, and a
// strictly serial GEMM, so the per-element accumulation chains (and hence
// the bits of the result) never depend on the worker count. When there are
// fewer units than workers (single small image), the unit loop runs serial
// and the parallelism moves inside the GEMM instead, which partitions
// output columns without touching the chains either.
func conv2dInto(out, x, w, bias *Tensor, spec ConvSpec) {
	n, c, h, wd := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	cout, cg, kh, kw := w.shape[0], w.shape[1], w.shape[2], w.shape[3]
	oh := convOutSize(h, kh, spec.StrideH, spec.PadH)
	ow := convOutSize(wd, kw, spec.StrideW, spec.PadW)
	g := spec.Groups
	coutG := cout / g
	l := oh * ow
	kdim := cg * kh * kw

	unit := func(u int, col []float32, ar *arena) {
		s, gi := u/g, u%g
		img := x.data[s*c*h*wd : (s+1)*c*h*wd]
		outImg := out.data[s*cout*l : (s+1)*cout*l]
		im2colInto(col, img, gi*cg, cg, h, wd, kh, kw, oh, ow, spec)
		wg := w.data[gi*coutG*kdim : (gi+1)*coutG*kdim]
		og := outImg[gi*coutG*l : (gi+1)*coutG*l]
		if ar != nil {
			gemmSerial(og, l, wg, kdim, false, col, l, false, coutG, kdim, l, false, ar)
		} else {
			gemmParallel(og, l, wg, kdim, false, col, l, false, coutG, kdim, l, false)
		}
		if bias != nil {
			for oc := gi * coutG; oc < (gi+1)*coutG; oc++ {
				bv := bias.data[oc]
				row := outImg[oc*l : (oc+1)*l]
				for i := range row {
					row[i] += bv
				}
			}
		}
	}

	units := n * g
	if Workers() > 1 && units >= Workers() {
		parallelForChunks(units, func(lo, hi int) {
			ar := getArena()
			ar.reserve(kdim*l + gemmPackBound(coutG, kdim, l))
			col := ar.take(kdim * l)
			for u := lo; u < hi; u++ {
				unit(u, col, ar)
			}
			ar.release()
		})
		return
	}
	ar := getArena()
	ar.reserve(kdim * l)
	col := ar.take(kdim * l)
	for u := 0; u < units; u++ {
		unit(u, col, nil)
	}
	ar.release()
}

// Conv2dGrads holds the result of Conv2dBackward.
type Conv2dGrads struct {
	Input  *Tensor // dL/dx, shape of x
	Weight *Tensor // dL/dW, shape of w
	Bias   *Tensor // dL/db, shape [Cout]; nil when bias was nil
}

// Conv2dBackward computes the gradients of a convolution given the
// upstream gradient gradOut (shape of the forward output). Pass
// needInput=false to skip the input-gradient computation for the first
// layer of a network.
//
// Parallelism: the weight gradient accumulates over samples, so its sample
// loop stays sequential and only the groups axis (disjoint dW slabs) fans
// out; the input gradient has no cross-unit accumulation and parallelizes
// over the full N×groups axis. Both choices keep every accumulation chain
// independent of the worker count.
func Conv2dBackward(x, w *Tensor, hasBias bool, gradOut *Tensor, spec ConvSpec, needInput bool) Conv2dGrads {
	spec = checkConvShapes(x, w, nil, spec)
	n, c, h, wd := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	cout, cg, kh, kw := w.shape[0], w.shape[1], w.shape[2], w.shape[3]
	oh := convOutSize(h, kh, spec.StrideH, spec.PadH)
	ow := convOutSize(wd, kw, spec.StrideW, spec.PadW)
	if !sameShape(gradOut.shape, []int{n, cout, oh, ow}) {
		panic(fmt.Sprintf("tensor: Conv2dBackward gradOut shape %v != expected %v", gradOut.shape, []int{n, cout, oh, ow}))
	}
	g := spec.Groups
	coutG := cout / g
	l := oh * ow
	kdim := cg * kh * kw

	grads := Conv2dGrads{Weight: New(w.shape...)}
	if hasBias {
		grads.Bias = New(cout)
		for s := 0; s < n; s++ {
			for oc := 0; oc < cout; oc++ {
				row := gradOut.data[(s*cout+oc)*l : (s*cout+oc+1)*l]
				var acc float32
				for _, v := range row {
					acc += v
				}
				grads.Bias.data[oc] += acc
			}
		}
	}

	// dW pass: per group, sequential over samples.
	// dW_g += gOut_g [coutG, l] × colᵀ (col is [kdim, l]).
	dwGroup := func(gi int, col []float32, ar *arena) {
		gwg := grads.Weight.data[gi*coutG*kdim : (gi+1)*coutG*kdim]
		for s := 0; s < n; s++ {
			img := x.data[s*c*h*wd : (s+1)*c*h*wd]
			im2colInto(col, img, gi*cg, cg, h, wd, kh, kw, oh, ow, spec)
			gog := gradOut.data[s*cout*l+gi*coutG*l : s*cout*l+(gi+1)*coutG*l]
			if ar != nil {
				gemmSerial(gwg, kdim, gog, l, false, col, l, true, coutG, l, kdim, true, ar)
			} else {
				gemmParallel(gwg, kdim, gog, l, false, col, l, true, coutG, l, kdim, true)
			}
		}
	}
	if Workers() > 1 && g >= Workers() {
		parallelForChunks(g, func(lo, hi int) {
			ar := getArena()
			ar.reserve(kdim*l + gemmPackBound(coutG, l, kdim))
			col := ar.take(kdim * l)
			for gi := lo; gi < hi; gi++ {
				dwGroup(gi, col, ar)
			}
			ar.release()
		})
	} else {
		ar := getArena()
		ar.reserve(kdim * l)
		col := ar.take(kdim * l)
		for gi := 0; gi < g; gi++ {
			dwGroup(gi, col, nil)
		}
		ar.release()
	}

	if !needInput {
		return grads
	}

	// dX pass: colGrad = W_gᵀ [kdim, coutG] × gOut_g [coutG, l], scattered
	// back by col2im. Units (s, gi) touch disjoint regions of grads.Input.
	// The GEMM overwrites colGrad, so the scratch needs no zeroing.
	grads.Input = New(x.shape...)
	dxUnit := func(u int, colGrad []float32, ar *arena) {
		s, gi := u/g, u%g
		wg := w.data[gi*coutG*kdim : (gi+1)*coutG*kdim]
		gog := gradOut.data[s*cout*l+gi*coutG*l : s*cout*l+(gi+1)*coutG*l]
		if ar != nil {
			gemmSerial(colGrad, l, wg, kdim, true, gog, l, false, kdim, coutG, l, false, ar)
		} else {
			gemmParallel(colGrad, l, wg, kdim, true, gog, l, false, kdim, coutG, l, false)
		}
		imgGrad := grads.Input.data[s*c*h*wd : (s+1)*c*h*wd]
		col2imAccInto(imgGrad, colGrad, gi*cg, cg, h, wd, kh, kw, oh, ow, spec)
	}
	units := n * g
	if Workers() > 1 && units >= Workers() {
		parallelForChunks(units, func(lo, hi int) {
			ar := getArena()
			ar.reserve(kdim*l + gemmPackBound(kdim, coutG, l))
			colGrad := ar.take(kdim * l)
			for u := lo; u < hi; u++ {
				dxUnit(u, colGrad, ar)
			}
			ar.release()
		})
	} else {
		ar := getArena()
		ar.reserve(kdim * l)
		colGrad := ar.take(kdim * l)
		for u := 0; u < units; u++ {
			dxUnit(u, colGrad, nil)
		}
		ar.release()
	}
	return grads
}
