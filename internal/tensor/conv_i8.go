package tensor

import "fmt"

// Quantized (int8) layer drivers for the quantized inference backend.
// The layer's float32 input is quantized to int8 codes (affine: code =
// round(v/scale) + zp, so zp is the code of real 0.0), the convolution
// or matmul runs on the int8 GEMM backend with int32 accumulation, and
// the accumulators are folded back to float32 as
//
//	out = inScale·wScale[oc]·(acc − zp·rowSum[oc]) + bias[oc]
//
// where rowSum[oc] is the precomputed sum of output channel oc's weight
// codes: with affine input codes q = q' + zp the zp·rowSum term removes
// the zero-point's contribution exactly (integer arithmetic, no
// rounding). Requantization of the output to the layer's activation
// grid is the caller's job (internal/nn does it with quant.Scale so the
// rounding rule has a single definition).
//
// Determinism: quantization is elementwise, the int32 accumulation is
// exact under any blocking or worker split, and the fold is elementwise
// float32 — so results are bit-identical across worker counts and
// schedules, the same contract as the float32 backend.

// QuantParams carries the calibrated quantization metadata one int8
// layer forward needs. Scales are plain float32 here — the tensor
// package stays below internal/quant in the dependency order; nn
// converts from quant.Scale.
type QuantParams struct {
	InScale float32 // input activation scale
	InZP    int8    // input zero-point code (0 for symmetric)
	WScales []float32
	RowSums []int32
	Bias    []float32 // optional, float32 domain
}

// QuantizeI8Into writes the affine int8 codes of src into dst:
// code = clamp(round(v/scale) + zp, -127, 127), rounding half away from
// zero. This must match quant.Affine.Quantize bit-for-bit (pinned by a
// property test in internal/quant).
func QuantizeI8Into(dst []int8, src []float32, scale float32, zp int8) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QuantizeI8Into length mismatch %d != %d", len(dst), len(src)))
	}
	if scale <= 0 {
		for i := range dst {
			dst[i] = zp
		}
		return
	}
	for i, v := range src {
		q := v / scale
		var r int32
		if q >= 0 {
			r = int32(q + 0.5)
		} else {
			r = int32(q - 0.5)
		}
		r += int32(zp)
		if r > 127 {
			r = 127
		}
		if r < -127 {
			r = -127
		}
		dst[i] = int8(r)
	}
}

// im2colInt8Into is im2colInto over int8 codes; out-of-image taps are
// padded with the zero-point code (the code of real 0.0), so padding
// contributes exactly zero after the zp·rowSum correction.
func im2colInt8Into(col []int8, img []int8, c0, cg, h, wd, kh, kw, oh, ow int, spec ConvSpec, zp int8) {
	l := oh * ow
	for c := 0; c < cg; c++ {
		chImg := img[(c0+c)*h*wd : (c0+c+1)*h*wd]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := col[((c*kh+ky)*kw+kx)*l : ((c*kh+ky)*kw+kx+1)*l]
				if spec.StrideW == 1 {
					// Unit horizontal stride: each output row is a
					// left-pad run, one contiguous image span, and a
					// right-pad run — bulk copy instead of a per-tap
					// bounds check (1-byte elements make this memmove
					// the whole cost of im2col).
					lo, hi := 0, ow
					if d := spec.PadW - kx; d > 0 {
						lo = d
					}
					if d := wd + spec.PadW - kx; d < hi {
						hi = d
					}
					if hi < lo {
						hi = lo
					}
					for oy := 0; oy < oh; oy++ {
						iy := oy*spec.StrideH - spec.PadH + ky
						dst := row[oy*ow : (oy+1)*ow]
						if iy < 0 || iy >= h {
							for i := range dst {
								dst[i] = zp
							}
							continue
						}
						for i := 0; i < lo; i++ {
							dst[i] = zp
						}
						base := iy*wd - spec.PadW + kx
						copy(dst[lo:hi], chImg[base+lo:base+hi])
						for i := hi; i < ow; i++ {
							dst[i] = zp
						}
					}
					continue
				}
				for oy := 0; oy < oh; oy++ {
					iy := oy*spec.StrideH - spec.PadH + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[oy*ow+ox] = zp
						}
						continue
					}
					base := iy * wd
					for ox := 0; ox < ow; ox++ {
						ix := ox*spec.StrideW - spec.PadW + kx
						if ix < 0 || ix >= wd {
							row[oy*ow+ox] = zp
						} else {
							row[oy*ow+ox] = chImg[base+ix]
						}
					}
				}
			}
		}
	}
}

// Conv2dInt8Into computes a 2-D convolution of x [N,C,H,W] against int8
// weight codes wq with shape wShape [Cout,C/groups,KH,KW], writing the
// dequantized float32 result into dst. Parallelization mirrors the
// float32 conv: disjoint (sample, group) units fan out across workers;
// a single small unit instead parallelizes columns inside the GEMM.
func Conv2dInt8Into(dst, x *Tensor, wq []int8, wShape []int, qp QuantParams, spec ConvSpec) {
	spec = spec.Canon()
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Conv2dInt8 input must be [N,C,H,W], got %v", x.shape))
	}
	if len(wShape) != 4 {
		panic(fmt.Sprintf("tensor: Conv2dInt8 weight shape must be rank 4, got %v", wShape))
	}
	n, c, h, wd := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	cout, cg, kh, kw := wShape[0], wShape[1], wShape[2], wShape[3]
	if len(wq) != cout*cg*kh*kw {
		panic(fmt.Sprintf("tensor: Conv2dInt8 weight codes %d != shape %v", len(wq), wShape))
	}
	if len(qp.WScales) != cout || len(qp.RowSums) != cout {
		panic(fmt.Sprintf("tensor: Conv2dInt8 needs %d per-channel scales and row sums, got %d/%d", cout, len(qp.WScales), len(qp.RowSums)))
	}
	g := spec.Groups
	if c%g != 0 || cout%g != 0 || cg != c/g {
		panic(fmt.Sprintf("tensor: Conv2dInt8 channels C=%d Cout=%d groups=%d Cg=%d inconsistent", c, cout, g, cg))
	}
	oh := convOutSize(h, kh, spec.StrideH, spec.PadH)
	ow := convOutSize(wd, kw, spec.StrideW, spec.PadW)
	want := []int{n, cout, oh, ow}
	if !sameShape(dst.shape, want) {
		panic(fmt.Sprintf("tensor: Conv2dInt8Into dst shape %v != expected %v", dst.shape, want))
	}
	coutG := cout / g
	l := oh * ow
	kdim := cg * kh * kw

	// Quantize the whole input once; units only read their slab. The
	// extra kdim·l + B-pack bound covers the serial path's column buffer
	// and the GEMM's B panels so nested takes never reallocate.
	ixa := getIArena()
	ixa.reserve8(len(x.data) + kdim*l + gemmI8PackBoundB(kdim, l))
	xq := ixa.take8(len(x.data))
	QuantizeI8Into(xq, x.data, qp.InScale, qp.InZP)

	// A 1×1 stride-1 unpadded conv's im2col is the identity: the group's
	// quantized channel slab already IS the [Cg, OH·OW] column matrix, so
	// the GEMM reads it in place and the whole im2col pass disappears.
	pointwise := kh == 1 && kw == 1 && spec.StrideH == 1 && spec.StrideW == 1 &&
		spec.PadH == 0 && spec.PadW == 0

	unit := func(u int, col []int8, acc []int32, ia *iarena) {
		s, gi := u/g, u%g
		img := xq[s*c*h*wd : (s+1)*c*h*wd]
		if pointwise {
			col = img[gi*cg*h*wd : (gi+1)*cg*h*wd]
		} else {
			im2colInt8Into(col, img, gi*cg, cg, h, wd, kh, kw, oh, ow, spec, qp.InZP)
		}
		wg := wq[gi*coutG*kdim : (gi+1)*coutG*kdim]
		if ia != nil {
			gemmI8Serial(acc, l, wg, kdim, col, l, false, coutG, kdim, l, ia)
		} else {
			gemmI8Parallel(acc, l, wg, kdim, col, l, false, coutG, kdim, l)
		}
		outImg := dst.data[s*cout*l : (s+1)*cout*l]
		for ocg := 0; ocg < coutG; ocg++ {
			oc := gi*coutG + ocg
			scale := qp.InScale * qp.WScales[oc]
			corr := int32(qp.InZP) * qp.RowSums[oc]
			var bv float32
			if qp.Bias != nil {
				bv = qp.Bias[oc]
			}
			arow := acc[ocg*l : (ocg+1)*l]
			orow := outImg[oc*l : (oc+1)*l]
			for i, av := range arow {
				orow[i] = float32(av-corr)*scale + bv
			}
		}
	}

	units := n * g
	if Workers() > 1 && units >= Workers() {
		parallelForChunks(units, func(lo, hi int) {
			ia := getIArena()
			ia.reserve8(kdim*l + gemmI8PackBoundB(kdim, l))
			ia.reserve32(coutG * l)
			ia.reserve16(gemmI8PackBoundA(coutG, kdim))
			col := ia.take8(kdim * l)
			acc := ia.take32(coutG * l)
			for u := lo; u < hi; u++ {
				unit(u, col, acc, ia)
			}
			ia.release()
		})
		ixa.release()
		return
	}
	ixa.reserve32(coutG * l)
	col := ixa.take8(kdim * l)
	acc := ixa.take32(coutG * l)
	for u := 0; u < units; u++ {
		unit(u, col, acc, nil)
	}
	ixa.release()
}

// LinearInt8Into computes dst = dequant(quant(x) × Wqᵀ) for x [N, in]
// and weight codes wq [out, in] (row-major), the int8 analogue of
// MatMulTransB plus the bias fold.
func LinearInt8Into(dst, x *Tensor, wq []int8, qp QuantParams) {
	if x.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: LinearInt8 requires rank-2 tensors, got %v -> %v", x.shape, dst.shape))
	}
	rows, in := x.shape[0], x.shape[1]
	out := dst.shape[1]
	if dst.shape[0] != rows || len(wq) != out*in {
		panic(fmt.Sprintf("tensor: LinearInt8 shapes x=%v dst=%v wq=%d", x.shape, dst.shape, len(wq)))
	}
	if len(qp.WScales) != out || len(qp.RowSums) != out {
		panic(fmt.Sprintf("tensor: LinearInt8 needs %d per-unit scales and row sums, got %d/%d", out, len(qp.WScales), len(qp.RowSums)))
	}
	ia := getIArena()
	ia.reserve8(rows * in)
	ia.reserve32(rows * out)
	xq := ia.take8(rows * in)
	acc := ia.take32(rows * out)
	QuantizeI8Into(xq, x.data, qp.InScale, qp.InZP)
	gemmI8Parallel(acc, out, xq, in, wq, in, true, rows, in, out)
	for i := 0; i < rows; i++ {
		arow := acc[i*out : (i+1)*out]
		orow := dst.data[i*out : (i+1)*out]
		for oc, av := range arow {
			scale := qp.InScale * qp.WScales[oc]
			corr := int32(qp.InZP) * qp.RowSums[oc]
			var bv float32
			if qp.Bias != nil {
				bv = qp.Bias[oc]
			}
			orow[oc] = float32(av-corr)*scale + bv
		}
	}
	ia.release()
}
