package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveConv2d is a direct-loop reference convolution used to validate the
// im2col+GEMM kernel.
func naiveConv2d(x, w, bias *Tensor, spec ConvSpec) *Tensor {
	spec = spec.Canon()
	n, c, h, wd := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	cout, cg, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	g := spec.Groups
	coutG := cout / g
	oh := (h+2*spec.PadH-kh)/spec.StrideH + 1
	ow := (wd+2*spec.PadW-kw)/spec.StrideW + 1
	out := New(n, cout, oh, ow)
	for s := 0; s < n; s++ {
		for oc := 0; oc < cout; oc++ {
			gi := oc / coutG
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					for ic := 0; ic < cg; ic++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy := oy*spec.StrideH - spec.PadH + ky
								ix := ox*spec.StrideW - spec.PadW + kx
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								acc += x.At(s, gi*cg+ic, iy, ix) * w.At(oc, ic, ky, kx)
							}
						}
					}
					if bias != nil {
						acc += bias.At(oc)
					}
					out.Set(acc, s, oc, oy, ox)
				}
			}
		}
	}
	_ = c
	return out
}

func TestConv2dIdentityKernel(t *testing.T) {
	// A 1x1 kernel of weight 1 is the identity for a single channel.
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	w := FromSlice([]float32{1}, 1, 1, 1, 1)
	out := Conv2d(x, w, nil, ConvSpec{})
	if !out.Equal(x) {
		t.Fatalf("identity conv = %v", out)
	}
}

func TestConv2dHandComputed(t *testing.T) {
	// 3x3 input, 2x2 kernel, stride 1, no pad.
	x := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	w := FromSlice([]float32{
		1, 0,
		0, -1,
	}, 1, 1, 2, 2)
	out := Conv2d(x, w, nil, ConvSpec{})
	want := FromSlice([]float32{
		1 - 5, 2 - 6,
		4 - 8, 5 - 9,
	}, 1, 1, 2, 2)
	if !out.Equal(want) {
		t.Fatalf("conv = %v, want %v", out, want)
	}
}

func TestConv2dBias(t *testing.T) {
	x := FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	w := FromSlice([]float32{1}, 1, 1, 1, 1)
	b := FromSlice([]float32{10}, 1)
	out := Conv2d(x, w, b, ConvSpec{})
	if out.At(0, 0, 1, 1) != 11 {
		t.Fatalf("conv+bias = %v", out)
	}
}

func TestConv2dPadding(t *testing.T) {
	// With pad 1 and a 3x3 sum kernel, corner output = sum of the 2x2
	// in-bounds region.
	x := Ones(1, 1, 2, 2)
	w := Ones(1, 1, 3, 3)
	out := Conv2d(x, w, nil, ConvSpec{PadH: 1, PadW: 1})
	if !sameShape(out.Shape(), []int{1, 1, 2, 2}) {
		t.Fatalf("pad output shape %v", out.Shape())
	}
	if out.At(0, 0, 0, 0) != 4 {
		t.Fatalf("corner = %g, want 4", out.At(0, 0, 0, 0))
	}
}

func TestConv2dStride(t *testing.T) {
	x := Arange(0, 1, 16).Reshape(1, 1, 4, 4)
	w := FromSlice([]float32{1}, 1, 1, 1, 1)
	out := Conv2d(x, w, nil, ConvSpec{StrideH: 2, StrideW: 2})
	want := FromSlice([]float32{0, 2, 8, 10}, 1, 1, 2, 2)
	if !out.Equal(want) {
		t.Fatalf("strided conv = %v", out)
	}
}

func TestConv2dMatchesNaive(t *testing.T) {
	tests := []struct {
		name         string
		n, c, h, w   int
		cout, kh, kw int
		spec         ConvSpec
	}{
		{"basic", 2, 3, 8, 8, 4, 3, 3, ConvSpec{PadH: 1, PadW: 1}},
		{"stride2", 1, 3, 9, 9, 5, 3, 3, ConvSpec{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}},
		{"asymmetric-kernel", 1, 2, 7, 9, 3, 1, 5, ConvSpec{PadW: 2}},
		{"grouped", 1, 4, 6, 6, 8, 3, 3, ConvSpec{PadH: 1, PadW: 1, Groups: 2}},
		{"depthwise", 2, 6, 5, 5, 6, 3, 3, ConvSpec{PadH: 1, PadW: 1, Groups: 6}},
		{"1x1", 2, 8, 4, 4, 16, 1, 1, ConvSpec{}},
	}
	rng := rand.New(rand.NewSource(42))
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			spec := tc.spec.Canon()
			x := RandUniform(rng, -1, 1, tc.n, tc.c, tc.h, tc.w)
			w := RandUniform(rng, -1, 1, tc.cout, tc.c/spec.Groups, tc.kh, tc.kw)
			b := RandUniform(rng, -1, 1, tc.cout)
			got := Conv2d(x, w, b, spec)
			want := naiveConv2d(x, w, b, spec)
			if !got.AllClose(want, 1e-4) {
				t.Fatalf("conv mismatch vs naive reference")
			}
		})
	}
}

func TestConv2dSerialParallelAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := RandUniform(rng, -1, 1, 2, 4, 10, 10)
	w := RandUniform(rng, -1, 1, 8, 4, 3, 3)
	prev := SetWorkers(1)
	serial := Conv2d(x, w, nil, ConvSpec{PadH: 1, PadW: 1})
	SetWorkers(8)
	parallel := Conv2d(x, w, nil, ConvSpec{PadH: 1, PadW: 1})
	SetWorkers(prev)
	if !serial.AllClose(parallel, 1e-6) {
		t.Fatal("serial and parallel backends disagree")
	}
}

func TestConvOutShape(t *testing.T) {
	got := ConvOutShape([]int{2, 3, 32, 32}, []int{16, 3, 3, 3}, ConvSpec{PadH: 1, PadW: 1})
	want := []int{2, 16, 32, 32}
	if !sameShape(got, want) {
		t.Fatalf("ConvOutShape = %v, want %v", got, want)
	}
}

func TestConv2dShapePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"rank3-input", func() { Conv2d(New(1, 2, 3), New(1, 2, 1, 1), nil, ConvSpec{}) }},
		{"channel-mismatch", func() { Conv2d(New(1, 3, 4, 4), New(2, 4, 1, 1), nil, ConvSpec{}) }},
		{"bad-groups", func() { Conv2d(New(1, 3, 4, 4), New(2, 1, 1, 1), nil, ConvSpec{Groups: 2}) }},
		{"bias-shape", func() { Conv2d(New(1, 1, 4, 4), New(2, 1, 1, 1), New(3), ConvSpec{}) }},
		{"kernel-too-big", func() { Conv2d(New(1, 1, 2, 2), New(1, 1, 5, 5), nil, ConvSpec{}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

// numericalGradCheck validates Conv2dBackward against finite differences
// on a small problem.
func TestConv2dBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := ConvSpec{PadH: 1, PadW: 1, StrideH: 2, StrideW: 2}.Canon()
	x := RandUniform(rng, -1, 1, 1, 2, 5, 5)
	w := RandUniform(rng, -1, 1, 3, 2, 3, 3)
	b := RandUniform(rng, -1, 1, 3)

	// Loss = sum of outputs; dL/dout = ones.
	out := Conv2d(x, w, b, spec)
	gradOut := Ones(out.Shape()...)
	grads := Conv2dBackward(x, w, true, gradOut, spec, true)

	const eps = 1e-2
	const tol = 2e-2
	check := func(name string, param *Tensor, grad *Tensor) {
		for i := 0; i < param.Len(); i++ {
			orig := param.AtFlat(i)
			param.SetFlat(i, orig+eps)
			up := Conv2d(x, w, b, spec).Sum()
			param.SetFlat(i, orig-eps)
			down := Conv2d(x, w, b, spec).Sum()
			param.SetFlat(i, orig)
			numeric := float32((up - down) / (2 * eps))
			analytic := grad.AtFlat(i)
			d := numeric - analytic
			if d < 0 {
				d = -d
			}
			if d > tol {
				t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", name, i, analytic, numeric)
			}
		}
	}
	check("weight", w, grads.Weight)
	check("bias", b, grads.Bias)
	check("input", x, grads.Input)
}

func TestConv2dBackwardGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	spec := ConvSpec{PadH: 1, PadW: 1, Groups: 2}.Canon()
	x := RandUniform(rng, -1, 1, 1, 4, 4, 4)
	w := RandUniform(rng, -1, 1, 4, 2, 3, 3)
	out := Conv2d(x, w, nil, spec)
	gradOut := Ones(out.Shape()...)
	grads := Conv2dBackward(x, w, false, gradOut, spec, true)
	if grads.Bias != nil {
		t.Fatal("bias grad must be nil when hasBias=false")
	}
	const eps, tol = 1e-2, 2e-2
	for i := 0; i < w.Len(); i += 7 { // spot-check
		orig := w.AtFlat(i)
		w.SetFlat(i, orig+eps)
		up := Conv2d(x, w, nil, spec).Sum()
		w.SetFlat(i, orig-eps)
		down := Conv2d(x, w, nil, spec).Sum()
		w.SetFlat(i, orig)
		numeric := float32((up - down) / (2 * eps))
		d := numeric - grads.Weight.AtFlat(i)
		if d < 0 {
			d = -d
		}
		if d > tol {
			t.Fatalf("grouped weight grad[%d]: analytic %g vs numeric %g", i, grads.Weight.AtFlat(i), numeric)
		}
	}
}

func TestConv2dBackwardSkipInput(t *testing.T) {
	x := Ones(1, 1, 3, 3)
	w := Ones(1, 1, 2, 2)
	out := Conv2d(x, w, nil, ConvSpec{})
	grads := Conv2dBackward(x, w, false, Ones(out.Shape()...), ConvSpec{}, false)
	if grads.Input != nil {
		t.Fatal("Input grad must be nil when needInput=false")
	}
	if grads.Weight == nil {
		t.Fatal("Weight grad missing")
	}
}

// Property: convolution is linear in the input —
// conv(a*x1 + x2) == a*conv(x1) + conv(x2) (no bias).
func TestConvLinearity_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x1 := RandUniform(rng, -1, 1, 1, 2, 6, 6)
		x2 := RandUniform(rng, -1, 1, 1, 2, 6, 6)
		w := RandUniform(rng, -1, 1, 3, 2, 3, 3)
		a := rng.Float32()*4 - 2
		spec := ConvSpec{PadH: 1, PadW: 1}
		lhs := Conv2d(AddInPlace(Scale(x1, a), x2), w, nil, spec)
		rhs := AddInPlace(Scale(Conv2d(x1, w, nil, spec), a), Conv2d(x2, w, nil, spec))
		return lhs.AllClose(rhs, 1e-3)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestConvWorkerCountBitIdentical is the conv half of the determinism
// contract: forward and backward must produce bit-for-bit identical
// results at every worker count, not merely AllClose. The kernel
// backend may only change WHICH goroutine computes an output element,
// never the order of its k-chain.
func TestConvWorkerCountBitIdentical(t *testing.T) {
	cases := []struct {
		name       string
		n, c, h, w int
		cout, k    int
		spec       ConvSpec
	}{
		{"alex-early", 2, 3, 32, 32, 16, 3, ConvSpec{PadH: 1, PadW: 1}},
		{"strided", 1, 4, 17, 17, 8, 5, ConvSpec{PadH: 2, PadW: 2, StrideH: 2, StrideW: 2}},
		{"grouped", 3, 8, 9, 9, 8, 3, ConvSpec{PadH: 1, PadW: 1, Groups: 4}},
		{"batch-heavy", 8, 2, 7, 7, 4, 3, ConvSpec{PadH: 1, PadW: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(29))
			x := RandUniform(rng, -1, 1, tc.n, tc.c, tc.h, tc.w)
			wt := RandUniform(rng, -1, 1, tc.cout, tc.c/tc.spec.Canon().Groups, tc.k, tc.k)
			b := RandUniform(rng, -1, 1, tc.cout)

			prev := SetWorkers(1)
			defer SetWorkers(prev)
			ref := Conv2d(x, wt, b, tc.spec)
			gradOut := RandUniform(rng, -1, 1, ref.Shape()...)
			refG := Conv2dBackward(x, wt, true, gradOut, tc.spec, true)

			for _, workers := range []int{4, 8} {
				SetWorkers(workers)
				got := Conv2d(x, wt, b, tc.spec)
				for i, v := range got.Data() {
					if v != ref.Data()[i] {
						t.Fatalf("Workers=%d forward[%d] = %g, Workers=1 %g", workers, i, v, ref.Data()[i])
					}
				}
				gotG := Conv2dBackward(x, wt, true, gradOut, tc.spec, true)
				for pair, gw := range map[string][2]*Tensor{
					"weight": {gotG.Weight, refG.Weight},
					"bias":   {gotG.Bias, refG.Bias},
					"input":  {gotG.Input, refG.Input},
				} {
					for i, v := range gw[0].Data() {
						if v != gw[1].Data()[i] {
							t.Fatalf("Workers=%d %s grad[%d] = %g, Workers=1 %g", workers, pair, i, v, gw[1].Data()[i])
						}
					}
				}
			}
		})
	}
}
