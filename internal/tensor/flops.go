package tensor

// Static FLOP estimates for the compute kernels. The campaign scheduler
// prices candidate execution plans with per-chain-node forward costs;
// when no timed calibration is available it falls back to these
// analytic estimates (multiply and add counted separately, so a MAC is
// two FLOPs). Estimates only need to be *relatively* accurate — the
// scheduler compares prefix and suffix sums of the same table, so a
// constant factor cancels.

// GEMMFLOPs estimates a dense [m,k]x[k,n] matrix multiply: 2 FLOPs per
// multiply-accumulate.
func GEMMFLOPs(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}

// ConvFLOPs estimates Conv2d over an input of shape [N,C,H,W] with a
// weight of shape [Cout, C/groups, KH, KW]: every output element reduces
// C/groups*KH*KW multiply-accumulates.
func ConvFLOPs(inShape, wShape []int, spec ConvSpec) float64 {
	out := ConvOutShape(inShape, wShape, spec)
	outElems := float64(out[0]) * float64(out[1]) * float64(out[2]) * float64(out[3])
	return 2 * outElems * float64(wShape[1]) * float64(wShape[2]) * float64(wShape[3])
}

// PoolOutShape returns the output shape [N,C,OH,OW] of a 2-D pooling
// operation over an input of shape [N,C,H,W] — the shape MaxPool2d and
// AvgPool2d produce, computed without running them.
func PoolOutShape(inShape []int, spec PoolSpec) []int {
	spec = spec.Canon()
	return []int{
		inShape[0], inShape[1],
		convOutSize(inShape[2], spec.KernelH, spec.StrideH, spec.PadH),
		convOutSize(inShape[3], spec.KernelW, spec.StrideW, spec.PadW),
	}
}

// PoolFLOPs estimates a 2-D pooling pass: each output element reduces a
// KH*KW window.
func PoolFLOPs(inShape []int, spec PoolSpec) float64 {
	spec = spec.Canon()
	out := PoolOutShape(inShape, spec)
	outElems := float64(out[0]) * float64(out[1]) * float64(out[2]) * float64(out[3])
	return outElems * float64(spec.KernelH) * float64(spec.KernelW)
}

// NumElems returns the element count of a shape (1 for a zero-rank
// shape), as a float64 for cost arithmetic.
func NumElems(shape []int) float64 {
	n := 1.0
	for _, d := range shape {
		n *= float64(d)
	}
	return n
}
