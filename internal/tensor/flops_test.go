package tensor

import "testing"

func TestGEMMFLOPs(t *testing.T) {
	if got := GEMMFLOPs(2, 3, 4); got != 48 {
		t.Fatalf("GEMMFLOPs(2,3,4) = %v, want 48", got)
	}
}

func TestConvFLOPs(t *testing.T) {
	// 1x3x8x8 input, 4 output channels, 3x3 kernel, pad 1 → 1x4x8x8 out,
	// each element reducing 3*3*3 = 27 MACs.
	in := []int{1, 3, 8, 8}
	w := []int{4, 3, 3, 3}
	want := 2.0 * (1 * 4 * 8 * 8) * 27
	if got := ConvFLOPs(in, w, ConvSpec{PadH: 1, PadW: 1}); got != want {
		t.Fatalf("ConvFLOPs = %v, want %v", got, want)
	}
	// Grouped: per-group input channels shrink the reduction.
	wg := []int{4, 1, 3, 3} // groups=3 would need Cout%3==0; use depthwise-ish 4 groups on 4 channels
	ing := []int{1, 4, 8, 8}
	wantG := 2.0 * (1 * 4 * 8 * 8) * 9
	if got := ConvFLOPs(ing, wg, ConvSpec{PadH: 1, PadW: 1, Groups: 4}); got != wantG {
		t.Fatalf("grouped ConvFLOPs = %v, want %v", got, wantG)
	}
}

func TestPoolOutShapeAndFLOPs(t *testing.T) {
	in := []int{2, 3, 8, 8}
	spec := PoolSpec{KernelH: 2, KernelW: 2} // stride defaults to kernel
	got := PoolOutShape(in, spec)
	want := []int{2, 3, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PoolOutShape = %v, want %v", got, want)
		}
	}
	if f := PoolFLOPs(in, spec); f != float64(2*3*4*4*4) {
		t.Fatalf("PoolFLOPs = %v, want %v", f, 2*3*4*4*4)
	}
}

func TestNumElems(t *testing.T) {
	if got := NumElems([]int{2, 3, 4}); got != 24 {
		t.Fatalf("NumElems = %v, want 24", got)
	}
	if got := NumElems(nil); got != 1 {
		t.Fatalf("NumElems(nil) = %v, want 1", got)
	}
}
