package tensor

// Blocked GEMM backend. One driver serves all four matmul variants
// (plain, accumulating, Aᵀ×B, A×Bᵀ) by parameterizing the pack routines
// with leading dimensions and transpose flags.
//
// Determinism contract (DESIGN.md §10): for every output element dst[i,j]
// the k-loop is a single left-to-right float32 accumulation chain
//
//	(((init + a_0·b_0) + a_1·b_1) + ... + a_{k-1}·b_{k-1})
//
// with init = 0 (overwrite) or the prior dst value (accumulate). Cache
// blocking only changes *which element* is computed when, never the
// per-element chain: k-chunk boundaries sit at fixed multiples of gemmKC
// and partial sums are stored to / reloaded from dst between chunks
// (float32 load/store is exact). The micro-kernels — AVX2 assembly and
// scalar Go alike — keep one accumulator per element and use separate
// multiply and add (never FMA). Consequently the result is bit-identical
// regardless of worker count, row/column partitioning, tile shape, or
// whether the naive fallback handled the call — the property the
// campaign engine's (Seed, Trials) reproducibility rests on.

const (
	gemmMR = 4   // micro-kernel rows
	gemmNR = 16  // micro-kernel columns (two AVX2 vectors)
	gemmKC = 256 // k-chunk: packed panels stay L1/L2-resident
	gemmMC = 96  // rows of A packed per macro block
	gemmNC = 512 // columns of B packed per macro block
)

// gemmNaive is the reference kernel: the obvious triple loop, retained
// both as the small-problem fallback and as the oracle the property
// tests compare the blocked path against (exact float32 equality).
// Element access: A[i,p] is a[i*lda+p], or a[p*lda+i] when transA;
// B[p,j] is b[p*ldb+j], or b[j*ldb+p] when transB.
func gemmNaive(dst []float32, ldc int, a []float32, lda int, transA bool, b []float32, ldb int, transB bool, m, k, n int, acc bool) {
	for i := 0; i < m; i++ {
		drow := dst[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			var s float32
			if acc {
				s = drow[j]
			}
			for p := 0; p < k; p++ {
				var av, bv float32
				if transA {
					av = a[p*lda+i]
				} else {
					av = a[i*lda+p]
				}
				if transB {
					bv = b[j*ldb+p]
				} else {
					bv = b[p*ldb+j]
				}
				s += av * bv
			}
			drow[j] = s
		}
	}
}

// gemmNaiveIKJ is gemmNaive with the p-loop hoisted outside the j-loop so
// B rows stream contiguously — much faster for skinny outputs (small m).
// For a fixed element (i, j) the terms still arrive in ascending p order,
// one float32 add at a time, so the accumulation chain — and therefore the
// result bits — match gemmNaive exactly.
func gemmNaiveIKJ(dst []float32, ldc int, a []float32, lda int, transA bool, b []float32, ldb int, m, k, n int, acc bool) {
	for i := 0; i < m; i++ {
		drow := dst[i*ldc : i*ldc+n]
		if !acc {
			for j := range drow {
				drow[j] = 0
			}
		}
		for p := 0; p < k; p++ {
			var av float32
			if transA {
				av = a[p*lda+i]
			} else {
				av = a[i*lda+p]
			}
			brow := b[p*ldb : p*ldb+n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// gemmSmall dispatches problems below the blocking thresholds: dot-product
// order when B is transposed (both operand rows stream contiguously),
// row-streaming ikj order otherwise.
func gemmSmall(dst []float32, ldc int, a []float32, lda int, transA bool, b []float32, ldb int, transB bool, m, k, n int, acc bool) {
	if transB {
		// Rows of both operands are contiguous: plain dot products,
		// branch-free inner loops, same ascending-p chains as gemmNaive.
		for i := 0; i < m; i++ {
			drow := dst[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				brow := b[j*ldb : j*ldb+k]
				var s float32
				if acc {
					s = drow[j]
				}
				if transA {
					for p, bv := range brow {
						s += a[p*lda+i] * bv
					}
				} else {
					arow := a[i*lda : i*lda+k]
					for p, av := range arow {
						s += av * brow[p]
					}
				}
				drow[j] = s
			}
		}
		return
	}
	gemmNaiveIKJ(dst, ldc, a, lda, transA, b, ldb, m, k, n, acc)
}

// gemmReserve sizes ar for one gemmSerial call of the given shape (pack
// panels only; callers add their own scratch on top).
func gemmReserve(ar *arena, m, k, n int) {
	ar.reserve(gemmPackBound(m, k, n))
}

// gemmPackBound returns the arena floats gemmSerial needs for a problem
// of the given shape.
func gemmPackBound(m, k, n int) int {
	mb, kb, nb := m, k, n
	if mb > gemmMC {
		mb = gemmMC
	}
	if kb > gemmKC {
		kb = gemmKC
	}
	if nb > gemmNC {
		nb = gemmNC
	}
	return mb*kb + kb*nb
}

// gemmSerial computes dst = A×B (acc=false) or dst += A×B (acc=true) on
// the calling goroutine using the blocked, packed kernel. dst rows are
// ldc apart; transpose flags and leading dimensions are as in gemmNaive.
// Pack panels come from ar (restored on return).
func gemmSerial(dst []float32, ldc int, a []float32, lda int, transA bool, b []float32, ldb int, transB bool, m, k, n int, acc bool, ar *arena) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !acc {
			for i := 0; i < m; i++ {
				row := dst[i*ldc : i*ldc+n]
				for j := range row {
					row[j] = 0
				}
			}
		}
		return
	}
	// Tiny or skinny problems: packing costs more than it saves, and
	// outputs narrower than one vector tile would run entirely on the
	// scalar edge kernel anyway.
	if n < gemmNR || m*n < gemmMR*gemmNR || m*k*n < 8192 {
		gemmSmall(dst, ldc, a, lda, transA, b, ldb, transB, m, k, n, acc)
		return
	}

	mk := ar.mark()
	mbMax, kbMax, nbMax := m, k, n
	if mbMax > gemmMC {
		mbMax = gemmMC
	}
	if kbMax > gemmKC {
		kbMax = gemmKC
	}
	if nbMax > gemmNC {
		nbMax = gemmNC
	}
	apack := ar.take(mbMax * kbMax)
	bpack := ar.take(kbMax * nbMax)

	for jc := 0; jc < n; jc += gemmNC {
		nb := n - jc
		if nb > gemmNC {
			nb = gemmNC
		}
		for pc := 0; pc < k; pc += gemmKC {
			kb := k - pc
			if kb > gemmKC {
				kb = gemmKC
			}
			first := pc == 0 && !acc
			packB(bpack, b, ldb, transB, pc, jc, kb, nb)
			for ic := 0; ic < m; ic += gemmMC {
				mb := m - ic
				if mb > gemmMC {
					mb = gemmMC
				}
				packA(apack, a, lda, transA, ic, pc, mb, kb)
				gemmMacro(dst, ldc, ic, jc, apack, bpack, mb, nb, kb, first)
			}
		}
	}
	ar.restore(mk)
}

// packA copies the mb×kb block of A at (ic, pc) into mr-row panels laid
// out p-major: panel q (rows ic+q·mr …) occupies apack[q·mr·kb …] with
// element (r, p) at offset p·rows+r, rows being the panel height (mr, or
// the remainder for the last panel — edge panels are packed dense, not
// zero-padded, so no phantom +0.0 terms enter any accumulation chain).
func packA(apack []float32, a []float32, lda int, transA bool, ic, pc, mb, kb int) {
	idx := 0
	for ir := 0; ir < mb; ir += gemmMR {
		rows := mb - ir
		if rows > gemmMR {
			rows = gemmMR
		}
		if transA {
			// A stored [k, m]: row p of storage holds column p of the
			// logical matrix — both source and destination walk
			// contiguously (this replaces the strided column walk the
			// old matMulTransAInto kernel paid per inner-loop step).
			for p := 0; p < kb; p++ {
				src := a[(pc+p)*lda+ic+ir : (pc+p)*lda+ic+ir+rows]
				copy(apack[idx:idx+rows], src)
				idx += rows
			}
		} else {
			for r := 0; r < rows; r++ {
				src := a[(ic+ir+r)*lda+pc : (ic+ir+r)*lda+pc+kb]
				for p, v := range src {
					apack[idx+p*rows+r] = v
				}
			}
			idx += rows * kb
		}
	}
}

// packB copies the kb×nb block of B at (pc, jc) into nr-column panels
// laid out p-major: element (p, c) of a panel of width cols sits at
// offset p·cols+c.
func packB(bpack []float32, b []float32, ldb int, transB bool, pc, jc, kb, nb int) {
	idx := 0
	for jr := 0; jr < nb; jr += gemmNR {
		cols := nb - jr
		if cols > gemmNR {
			cols = gemmNR
		}
		if transB {
			// B stored [n, k]: logical column j is storage row j.
			for c := 0; c < cols; c++ {
				src := b[(jc+jr+c)*ldb+pc : (jc+jr+c)*ldb+pc+kb]
				for p, v := range src {
					bpack[idx+p*cols+c] = v
				}
			}
			idx += cols * kb
		} else {
			for p := 0; p < kb; p++ {
				src := b[(pc+p)*ldb+jc+jr : (pc+p)*ldb+jc+jr+cols]
				copy(bpack[idx:idx+cols], src)
				idx += cols
			}
		}
	}
}

// gemmMacro drives the micro-kernel over one packed (mb×kb)·(kb×nb)
// block, writing dst starting at (ic, jc).
func gemmMacro(dst []float32, ldc, ic, jc int, apack, bpack []float32, mb, nb, kb int, first bool) {
	for jr := 0; jr < nb; jr += gemmNR {
		cols := nb - jr
		if cols > gemmNR {
			cols = gemmNR
		}
		bp := bpack[jr*kb : jr*kb+cols*kb]
		for ir := 0; ir < mb; ir += gemmMR {
			rows := mb - ir
			if rows > gemmMR {
				rows = gemmMR
			}
			ap := apack[ir*kb : ir*kb+rows*kb]
			c := dst[(ic+ir)*ldc+jc+jr:]
			if cols == gemmNR {
				if rows == gemmMR {
					kern4x16(c, ldc, ap, bp, kb, first)
					continue
				}
				// Row remainder at full width: one 1×16 pass per row
				// keeps the wide kernel (and its exact per-element
				// chains — each row is independent).
				for r := 0; r < rows; r++ {
					kern1x16(c[r*ldc:], ap[r:], rows, bp, kb, first)
				}
				continue
			}
			kernEdge(c, ldc, ap, bp, rows, cols, kb, first)
		}
	}
}

// kernEdge handles tiles narrower than the vector kernels: one
// accumulator per element, sequential over the packed k chunk.
func kernEdge(c []float32, ldc int, ap, bp []float32, rows, cols, kb int, first bool) {
	for r := 0; r < rows; r++ {
		crow := c[r*ldc : r*ldc+cols]
		for j := 0; j < cols; j++ {
			var s float32
			if !first {
				s = crow[j]
			}
			for p := 0; p < kb; p++ {
				s += ap[p*rows+r] * bp[p*cols+j]
			}
			crow[j] = s
		}
	}
}

// kern4x16scalar is the portable micro-kernel: the 4×16 tile is computed
// as eight 2×4 register sub-tiles (small enough that the compiler keeps
// every accumulator in a register), each a straight p-loop — the same
// per-element chains as the assembly kernel.
func kern4x16scalar(c []float32, ldc int, ap, bp []float32, kb int, first bool) {
	for r0 := 0; r0 < gemmMR; r0 += 2 {
		for j0 := 0; j0 < gemmNR; j0 += 4 {
			var c00, c01, c02, c03, c10, c11, c12, c13 float32
			if !first {
				d0 := c[r0*ldc+j0 : r0*ldc+j0+4]
				d1 := c[(r0+1)*ldc+j0 : (r0+1)*ldc+j0+4]
				c00, c01, c02, c03 = d0[0], d0[1], d0[2], d0[3]
				c10, c11, c12, c13 = d1[0], d1[1], d1[2], d1[3]
			}
			// Advance the panel bases and index with the sub-tile
			// offsets: the final advance lands exactly on the empty
			// tail, whereas advancing a pre-offset slice would
			// over-slice it on the last iteration.
			api := ap
			bpi := bp
			for p := 0; p < kb; p++ {
				a0, a1 := api[r0], api[r0+1]
				b0, b1, b2, b3 := bpi[j0], bpi[j0+1], bpi[j0+2], bpi[j0+3]
				c00 += a0 * b0
				c01 += a0 * b1
				c02 += a0 * b2
				c03 += a0 * b3
				c10 += a1 * b0
				c11 += a1 * b1
				c12 += a1 * b2
				c13 += a1 * b3
				api = api[gemmMR:]
				bpi = bpi[gemmNR:]
			}
			d0 := c[r0*ldc+j0 : r0*ldc+j0+4]
			d1 := c[(r0+1)*ldc+j0 : (r0+1)*ldc+j0+4]
			d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
			d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
		}
	}
}

// kern1x16scalar computes one row against a full-width B panel; astride
// is the packed row stride of ap (the panel height).
func kern1x16scalar(c []float32, ap []float32, astride int, bp []float32, kb int, first bool) {
	for j0 := 0; j0 < gemmNR; j0 += 4 {
		var c0, c1, c2, c3 float32
		if !first {
			d := c[j0 : j0+4]
			c0, c1, c2, c3 = d[0], d[1], d[2], d[3]
		}
		bpi := bp
		ai := 0
		for p := 0; p < kb; p++ {
			a0 := ap[ai]
			c0 += a0 * bpi[j0]
			c1 += a0 * bpi[j0+1]
			c2 += a0 * bpi[j0+2]
			c3 += a0 * bpi[j0+3]
			ai += astride
			bpi = bpi[gemmNR:]
		}
		d := c[j0 : j0+4]
		d[0], d[1], d[2], d[3] = c0, c1, c2, c3
	}
}
