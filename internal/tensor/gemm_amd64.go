//go:build amd64

package tensor

//go:noescape
func gemmKern4x16AVX(c *float32, ldc int, ap, bp *float32, kb int, first bool)

//go:noescape
func gemmKern1x16AVX(c *float32, ap *float32, astride int, bp *float32, kb int, first bool)

func cpuidAVX2() bool

// gemmAVX2 selects the assembly micro-kernels. Exported indirectly via
// KernelBackend for diagnostics; the scalar and vector kernels produce
// bit-identical results, so flipping this never changes outputs.
var gemmAVX2 = cpuidAVX2()

func kern4x16(c []float32, ldc int, ap, bp []float32, kb int, first bool) {
	if gemmAVX2 && kb > 0 {
		gemmKern4x16AVX(&c[0], ldc, &ap[0], &bp[0], kb, first)
		return
	}
	kern4x16scalar(c, ldc, ap, bp, kb, first)
}

func kern1x16(c []float32, ap []float32, astride int, bp []float32, kb int, first bool) {
	if gemmAVX2 && kb > 0 {
		gemmKern1x16AVX(&c[0], &ap[0], astride, &bp[0], kb, first)
		return
	}
	kern1x16scalar(c, ap, astride, bp, kb, first)
}

// KernelBackend names the active micro-kernel implementation.
func KernelBackend() string {
	if gemmAVX2 {
		return "avx2"
	}
	return "scalar"
}
