//go:build amd64

#include "textflag.h"

// func gemmKern4x16AVX(c *float32, ldc int, ap, bp *float32, kb int, first bool)
//
// 4×16 micro-kernel: the dst tile lives in Y0–Y7 (row r in Y(2r),
// Y(2r+1)), A elements are broadcast from the packed mr-panel, B comes
// as two vectors per k step from the packed nr-panel. Every element is
// updated with a separate VMULPS+VADDPS pair — never FMA — so each
// lane's accumulation chain rounds exactly like the scalar reference
// kernel, keeping results bit-identical across backends.
TEXT ·gemmKern4x16AVX(SB), NOSPLIT, $0-41
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), SI
	MOVQ ap+16(FP), R8
	MOVQ bp+24(FP), R9
	MOVQ kb+32(FP), CX
	SHLQ $2, SI              // ldc in bytes
	MOVQ DI, R11             // row 0
	LEAQ (DI)(SI*1), R12     // row 1
	LEAQ (DI)(SI*2), R13     // row 2
	LEAQ (R12)(SI*2), BX     // row 3
	MOVBLZX first+40(FP), AX
	TESTL AX, AX
	JZ   loadc
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	JMP  kloop
loadc:
	VMOVUPS (R11), Y0
	VMOVUPS 32(R11), Y1
	VMOVUPS (R12), Y2
	VMOVUPS 32(R12), Y3
	VMOVUPS (R13), Y4
	VMOVUPS 32(R13), Y5
	VMOVUPS (BX), Y6
	VMOVUPS 32(BX), Y7
kloop:
	VMOVUPS (R9), Y8
	VMOVUPS 32(R9), Y9
	VBROADCASTSS (R8), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y0, Y0
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y1, Y1
	VBROADCASTSS 4(R8), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y2, Y2
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y3, Y3
	VBROADCASTSS 8(R8), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y4, Y4
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y5, Y5
	VBROADCASTSS 12(R8), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y6, Y6
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y7, Y7
	ADDQ $16, R8
	ADDQ $64, R9
	DECQ CX
	JNZ  kloop
	VMOVUPS Y0, (R11)
	VMOVUPS Y1, 32(R11)
	VMOVUPS Y2, (R12)
	VMOVUPS Y3, 32(R12)
	VMOVUPS Y4, (R13)
	VMOVUPS Y5, 32(R13)
	VMOVUPS Y6, (BX)
	VMOVUPS Y7, 32(BX)
	VZEROUPPER
	RET

// func gemmKern1x16AVX(c *float32, ap *float32, astride int, bp *float32, kb int, first bool)
//
// Single-row variant for mr remainders and depthwise (m=1) GEMMs; ap
// advances by astride floats per k step.
TEXT ·gemmKern1x16AVX(SB), NOSPLIT, $0-41
	MOVQ c+0(FP), DI
	MOVQ ap+8(FP), R8
	MOVQ astride+16(FP), SI
	MOVQ bp+24(FP), R9
	MOVQ kb+32(FP), CX
	SHLQ $2, SI              // stride in bytes
	MOVBLZX first+40(FP), AX
	TESTL AX, AX
	JZ   loadc1
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	JMP  kloop1
loadc1:
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
kloop1:
	VMOVUPS (R9), Y8
	VMOVUPS 32(R9), Y9
	VBROADCASTSS (R8), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y0, Y0
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y1, Y1
	ADDQ SI, R8
	ADDQ $64, R9
	DECQ CX
	JNZ  kloop1
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VZEROUPPER
	RET

// func cpuidAVX2() bool
//
// AVX2 requires: CPUID.1 ECX.OSXSAVE[27] and .AVX[28], XCR0 XMM+YMM
// state enabled by the OS, and CPUID.7.0 EBX.AVX2[5].
TEXT ·cpuidAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  noavx2
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx2
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $0x20, BX
	JZ   noavx2
	MOVB $1, ret+0(FP)
	RET
noavx2:
	MOVB $0, ret+0(FP)
	RET
