package tensor

// Blocked int8 GEMM backend for the quantized inference path: int8
// operands, int32 accumulation. The structure deliberately mirrors the
// float32 backend in gemm.go — the same jc/pc/ic cache-blocking loop
// nest, the same panel sizes (gemmMR×gemmNR micro-tiles, gemmKC k-chunks)
// and the same arena-backed pack scratch — but with a k-pair-interleaved
// panel layout sized for the AVX2 VPMADDWD multiply-accumulate:
//
//   - A panels hold sign-extended int16 pairs, 2·gemmMR per k-pair:
//     element (r, p) of a panel sits at (p/2)·8 + 2r + p%2, so each
//     row's adjacent-k pair is one 32-bit broadcastable unit
//     (VPBROADCASTD needs the pair pre-widened as a 32-bit lane).
//   - B panels hold raw int8 codes in plain row-major gemmNR-column
//     slabs: element (p, c) at p·16 + c, kb rows zero-padded up to the
//     next even count. The pack is therefore a pure row copy — no
//     widening, no interleave — and the kernel does the work instead:
//     VPMOVSXBW widens two adjacent k-rows to int16 and one
//     VPUNPCKLWD/VPUNPCKHWD pair forms the (k, k+1) pairs VPMADDWD
//     needs, amortized over the gemmMR A-rows of the tile. Unpack works
//     within 128-bit lanes, so the kernel's accumulators hold columns in
//     the permuted order {0–3, 8–11}/{4–7, 12–15}; VPERM2I128 restores
//     natural order at tile load/store, once per tile instead of per k.
//   - Odd k is zero-padded inside the last pair — in integer arithmetic
//     a 0·x term is exactly neutral, so padding never changes results
//     (unlike float32, where the pack stays dense to keep chains exact).
//
// Determinism is free here: int32 integer accumulation is exact and
// associative, so ANY blocking, worker split, or kernel choice produces
// bit-identical accumulators. The scalar fallback kernels compute the
// same sums in plain loops; the parity tests (gemm_i8_test.go and the
// amd64-tagged kernel test) pin the asm and scalar paths to each other
// and to the naive reference on randomized shapes.

// gemmI8Naive is the reference: the obvious triple loop over int8
// operands with an int32 accumulator per element. A[i,p] = a[i*lda+p];
// B[p,j] = b[p*ldb+j], or b[j*ldb+p] when transB.
func gemmI8Naive(dst []int32, ldc int, a []int8, lda int, b []int8, ldb int, transB bool, m, k, n int) {
	for i := 0; i < m; i++ {
		drow := dst[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			var s int32
			for p := 0; p < k; p++ {
				var bv int8
				if transB {
					bv = b[j*ldb+p]
				} else {
					bv = b[p*ldb+j]
				}
				s += int32(a[i*lda+p]) * int32(bv)
			}
			drow[j] = s
		}
	}
}

// gemmI8Small dispatches problems below the blocking thresholds:
// dot-product order when B is transposed, row-streaming ikj otherwise.
func gemmI8Small(dst []int32, ldc int, a []int8, lda int, b []int8, ldb int, transB bool, m, k, n int) {
	if transB {
		for i := 0; i < m; i++ {
			drow := dst[i*ldc : i*ldc+n]
			arow := a[i*lda : i*lda+k]
			for j := 0; j < n; j++ {
				brow := b[j*ldb : j*ldb+k]
				var s int32
				for p, av := range arow {
					s += int32(av) * int32(brow[p])
				}
				drow[j] = s
			}
		}
		return
	}
	for i := 0; i < m; i++ {
		drow := dst[i*ldc : i*ldc+n]
		for j := range drow {
			drow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := int32(a[i*lda+p])
			brow := b[p*ldb : p*ldb+n]
			for j, bv := range brow {
				drow[j] += av * int32(bv)
			}
		}
	}
}

// gemmI8PackBoundA returns the int16 elements (A panels) and
// gemmI8PackBoundB the int8 elements (B panels) gemmI8Serial needs for
// one call of the given shape, padded to full tiles. gemmI8Reserve
// sizes both sections of an arena in one call.
func gemmI8PackBoundA(m, k int) int {
	mb, kb := m, k
	if mb > gemmMC {
		mb = gemmMC
	}
	if kb > gemmKC {
		kb = gemmKC
	}
	kp := (kb + 1) / 2
	return ((mb + gemmMR - 1) / gemmMR) * kp * 2 * gemmMR
}

func gemmI8PackBoundB(k, n int) int {
	kb, nb := k, n
	if kb > gemmKC {
		kb = gemmKC
	}
	if nb > gemmNC {
		nb = gemmNC
	}
	kp := (kb + 1) / 2
	return ((nb + gemmNR - 1) / gemmNR) * kp * 2 * gemmNR
}

func gemmI8Reserve(ia *iarena, m, k, n int) {
	ia.reserve16(gemmI8PackBoundA(m, k))
	ia.reserve8(gemmI8PackBoundB(k, n))
}

// gemmI8Serial computes dst = A×B (int32 accumulation, always overwrite)
// on the calling goroutine with the blocked, packed kernel. Pack panels
// come from ia — A from the int16 section, B from the int8 section —
// and both are restored on return. b may itself live in ia's int8
// section (the conv path's column buffer): takes hand out disjoint
// ranges, so the B panels never alias it.
func gemmI8Serial(dst []int32, ldc int, a []int8, lda int, b []int8, ldb int, transB bool, m, k, n int, ia *iarena) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		for i := 0; i < m; i++ {
			row := dst[i*ldc : i*ldc+n]
			for j := range row {
				row[j] = 0
			}
		}
		return
	}
	if n < gemmNR || m*n < gemmMR*gemmNR || m*k*n < 8192 {
		gemmI8Small(dst, ldc, a, lda, b, ldb, transB, m, k, n)
		return
	}

	mk16 := ia.mark16()
	mk8 := ia.mark8()
	apack := ia.take16(gemmI8PackBoundA(m, k))
	bpack := ia.take8(gemmI8PackBoundB(k, n))

	for jc := 0; jc < n; jc += gemmNC {
		nb := n - jc
		if nb > gemmNC {
			nb = gemmNC
		}
		for pc := 0; pc < k; pc += gemmKC {
			kb := k - pc
			if kb > gemmKC {
				kb = gemmKC
			}
			first := pc == 0
			packBI8(bpack, b, ldb, transB, pc, jc, kb, nb)
			for ic := 0; ic < m; ic += gemmMC {
				mb := m - ic
				if mb > gemmMC {
					mb = gemmMC
				}
				packAI8(apack, a, lda, ic, pc, mb, kb)
				gemmI8Macro(dst, ldc, ic, jc, apack, bpack, mb, nb, kb, first)
			}
		}
	}
	ia.restore8(mk8)
	ia.restore16(mk16)
}

// gemmI8Parallel is gemmI8Serial with the output partitioned by columns
// across Workers(). Integer accumulation is exact, so the split cannot
// change results; it only decides which goroutine computes which
// columns. Each worker packs into its own pooled arena.
func gemmI8Parallel(dst []int32, ldc int, a []int8, lda int, b []int8, ldb int, transB bool, m, k, n int) {
	w := Workers()
	if w > 1 && n >= 2*gemmNR && m*k*n >= 1<<15 {
		chunk := ((n+w-1)/w + gemmNR - 1) / gemmNR * gemmNR
		runParallel(n, chunk, w, func(lo, hi int) {
			bsub := b[lo:]
			if transB {
				bsub = b[lo*ldb:]
			}
			ia := getIArena()
			gemmI8Reserve(ia, m, k, hi-lo)
			gemmI8Serial(dst[lo:], ldc, a, lda, bsub, ldb, transB, m, k, hi-lo, ia)
			ia.release()
		})
		return
	}
	ia := getIArena()
	gemmI8Reserve(ia, m, k, n)
	gemmI8Serial(dst, ldc, a, lda, b, ldb, transB, m, k, n, ia)
	ia.release()
}

// packAI8 copies the mb×kb block of A at (ic, pc) into mr-row panels with
// the pair-interleaved layout described atop this file. Panels have a
// fixed 2·gemmMR stride per k-pair; missing rows (edge panels) and the
// odd-k tail are zero-padded, which integer accumulation treats as
// exactly neutral.
func packAI8(apack []int16, a []int8, lda int, ic, pc, mb, kb int) {
	kp := (kb + 1) / 2
	stride := 2 * gemmMR
	idx := 0
	for ir := 0; ir < mb; ir += gemmMR {
		rows := mb - ir
		if rows > gemmMR {
			rows = gemmMR
		}
		panel := apack[idx : idx+kp*stride]
		if rows < gemmMR || kb&1 == 1 {
			for i := range panel {
				panel[i] = 0
			}
		}
		for r := 0; r < rows; r++ {
			src := a[(ic+ir+r)*lda+pc : (ic+ir+r)*lda+pc+kb]
			o := 2 * r
			for p, v := range src {
				panel[(p>>1)*stride+o+(p&1)] = int16(v)
			}
		}
		idx += kp * stride
	}
}

// packBI8 copies the kb×nb block of B at (pc, jc) into nr-column panels
// in plain row-major order: element (p, c) at p·gemmNR + c. The
// non-transposed pack — the one every conv GEMM takes — degenerates to
// kb row copies per panel, which is the whole point of the layout: the
// kernel pays for the pair interleave once per tile, the pack (run once
// per k-chunk over the full block) pays nothing. Edge columns and the
// odd-k tail row are zero-padded.
func packBI8(bpack []int8, b []int8, ldb int, transB bool, pc, jc, kb, nb int) {
	kp := (kb + 1) / 2
	stride := 2 * gemmNR
	idx := 0
	for jr := 0; jr < nb; jr += gemmNR {
		cols := nb - jr
		if cols > gemmNR {
			cols = gemmNR
		}
		panel := bpack[idx : idx+kp*stride]
		if cols < gemmNR || kb&1 == 1 {
			for i := range panel {
				panel[i] = 0
			}
		}
		if transB {
			// B stored [n, k]: logical column j is storage row jc+jr+c.
			for c := 0; c < cols; c++ {
				src := b[(jc+jr+c)*ldb+pc : (jc+jr+c)*ldb+pc+kb]
				for p, v := range src {
					panel[p*gemmNR+c] = v
				}
			}
		} else {
			for p := 0; p < kb; p++ {
				copy(panel[p*gemmNR:p*gemmNR+cols], b[(pc+p)*ldb+jc+jr:(pc+p)*ldb+jc+jr+cols])
			}
		}
		idx += kp * stride
	}
}

// gemmI8Macro drives the micro-kernel over one packed block, writing dst
// starting at (ic, jc). first selects overwrite vs accumulate (k-chunks
// after the first add onto the stored partial sums — exact for int32).
func gemmI8Macro(dst []int32, ldc, ic, jc int, apack []int16, bpack []int8, mb, nb, kb int, first bool) {
	kp := (kb + 1) / 2
	for jr := 0; jr < nb; jr += gemmNR {
		cols := nb - jr
		if cols > gemmNR {
			cols = gemmNR
		}
		bp := bpack[(jr/gemmNR)*kp*2*gemmNR:][:kp*2*gemmNR]
		for ir := 0; ir < mb; ir += gemmMR {
			rows := mb - ir
			if rows > gemmMR {
				rows = gemmMR
			}
			ap := apack[(ir/gemmMR)*kp*2*gemmMR:][:kp*2*gemmMR]
			c := dst[(ic+ir)*ldc+jc+jr:]
			if rows == gemmMR && cols == gemmNR {
				kernI8(c, ldc, ap, bp, kp, first)
			} else {
				kernI8Edge(c, ldc, ap, bp, rows, cols, kp, first)
			}
		}
	}
}

// kernI8Edge handles tiles narrower than the full 4×16 kernel, walking
// the same padded panels (A pair-interleaved, B row-major).
func kernI8Edge(c []int32, ldc int, ap []int16, bp []int8, rows, cols, kp int, first bool) {
	for r := 0; r < rows; r++ {
		crow := c[r*ldc : r*ldc+cols]
		for j := 0; j < cols; j++ {
			var s int32
			if !first {
				s = crow[j]
			}
			for p2 := 0; p2 < kp; p2++ {
				s += int32(ap[p2*2*gemmMR+2*r])*int32(bp[(2*p2)*gemmNR+j]) +
					int32(ap[p2*2*gemmMR+2*r+1])*int32(bp[(2*p2+1)*gemmNR+j])
			}
			crow[j] = s
		}
	}
}

// kernI8x16scalar is the portable 4×16 micro-kernel: per k-pair it forms
// the same two-term products VPMADDWD computes and accumulates them in
// int32 — bit-identical to the assembly kernel by integer exactness.
func kernI8x16scalar(c []int32, ldc int, ap []int16, bp []int8, kp int, first bool) {
	var acc [gemmMR * gemmNR]int32
	if !first {
		for r := 0; r < gemmMR; r++ {
			copy(acc[r*gemmNR:(r+1)*gemmNR], c[r*ldc:r*ldc+gemmNR])
		}
	}
	for p2 := 0; p2 < kp; p2++ {
		av := ap[p2*2*gemmMR : p2*2*gemmMR+2*gemmMR]
		b0 := bp[(2*p2)*gemmNR : (2*p2)*gemmNR+gemmNR]
		b1 := bp[(2*p2+1)*gemmNR : (2*p2+1)*gemmNR+gemmNR]
		for r := 0; r < gemmMR; r++ {
			a0 := int32(av[2*r])
			a1 := int32(av[2*r+1])
			arow := acc[r*gemmNR : (r+1)*gemmNR]
			for j := 0; j < gemmNR; j++ {
				arow[j] += a0*int32(b0[j]) + a1*int32(b1[j])
			}
		}
	}
	for r := 0; r < gemmMR; r++ {
		copy(c[r*ldc:r*ldc+gemmNR], acc[r*gemmNR:(r+1)*gemmNR])
	}
}
