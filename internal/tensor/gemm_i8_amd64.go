//go:build amd64

package tensor

// gemmKernI8AVX is the AVX2 VPMADDWD micro-kernel (gemm_i8_amd64.s): a
// 4×16 int32 tile accumulated kp k-pairs deep. A panels are pre-widened
// pair-interleaved int16; B panels are raw row-major int8 codes the
// kernel sign-extends (VPMOVSXBW) and pair-interleaves (VPUNPCKL/HWD)
// in registers.
//
//go:noescape
func gemmKernI8AVX(c *int32, ldc int, ap *int16, bp *int8, kp int, first bool)

// kernI8 dispatches the full 4×16 int8 tile to the AVX2 kernel when the
// CPU supports it (same gemmAVX2 gate as the float32 kernels), else to
// the scalar reference. Both produce identical bits — integer
// accumulation is exact — so the choice is invisible to results.
func kernI8(c []int32, ldc int, ap []int16, bp []int8, kp int, first bool) {
	if gemmAVX2 && kp > 0 {
		gemmKernI8AVX(&c[0], ldc, &ap[0], &bp[0], kp, first)
		return
	}
	kernI8x16scalar(c, ldc, ap, bp, kp, first)
}
