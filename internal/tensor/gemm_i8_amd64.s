//go:build amd64

#include "textflag.h"

// func gemmKernI8AVX(c *int32, ldc int, ap *int16, bp *int8, kp int, first bool)
//
// 4×16 int8 micro-kernel with int32 accumulation. A panels hold
// sign-extended int16 in the k-pair-interleaved layout of gemm_i8.go:
// each k-pair contributes one VPBROADCASTD per row — the row's
// adjacent-k pair as a 32-bit unit. B panels are raw row-major int8:
// per k-pair the kernel widens the two 16-code rows with VPMOVSXBW and
// forms the (k, k+1) int16 pairs itself with one VPUNPCKLWD/VPUNPCKHWD,
// so the pack loop is a pure byte copy and the shuffle cost is paid
// once per 4-row tile instead of once per packed element.
//
// VPUNPCK interleaves within 128-bit lanes, so the accumulators hold
// columns in the permuted order: row r's tile lives in Y(2r) = columns
// {0–3, 8–11} and Y(2r+1) = columns {4–7, 12–15}. VPERM2I128 converts
// between that order and natural memory order when the C tile is loaded
// (first=false) and stored — a per-tile cost, not per-k.
//
// VPMADDWD multiplies the int16 pairs and adds them into int32 lanes —
// exactly the two-term sum the scalar kernel computes — and VPADDD
// folds them into the accumulators. Integer arithmetic is exact, so
// this is bit-identical to the scalar fallback by construction.
TEXT ·gemmKernI8AVX(SB), NOSPLIT, $0-41
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), SI
	MOVQ ap+16(FP), R8
	MOVQ bp+24(FP), R9
	MOVQ kp+32(FP), CX
	SHLQ $2, SI              // ldc in bytes (int32 elements)
	MOVQ DI, R11             // row 0
	LEAQ (DI)(SI*1), R12     // row 1
	LEAQ (DI)(SI*2), R13     // row 2
	LEAQ (R12)(SI*2), BX     // row 3
	MOVBLZX first+40(FP), AX
	TESTL AX, AX
	JZ   loadc
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7
	JMP  kloop
loadc:
	// Natural-order tiles permuted into {0–3,8–11}/{4–7,12–15} halves.
	VMOVDQU (R11), Y8
	VMOVDQU 32(R11), Y9
	VPERM2I128 $0x20, Y9, Y8, Y0
	VPERM2I128 $0x31, Y9, Y8, Y1
	VMOVDQU (R12), Y8
	VMOVDQU 32(R12), Y9
	VPERM2I128 $0x20, Y9, Y8, Y2
	VPERM2I128 $0x31, Y9, Y8, Y3
	VMOVDQU (R13), Y8
	VMOVDQU 32(R13), Y9
	VPERM2I128 $0x20, Y9, Y8, Y4
	VPERM2I128 $0x31, Y9, Y8, Y5
	VMOVDQU (BX), Y8
	VMOVDQU 32(BX), Y9
	VPERM2I128 $0x20, Y9, Y8, Y6
	VPERM2I128 $0x31, Y9, Y8, Y7
kloop:
	VPMOVSXBW (R9), Y8       // B row k: 16 int8 → int16
	VPMOVSXBW 16(R9), Y9     // B row k+1
	VPUNPCKLWD Y9, Y8, Y12   // (k, k+1) pairs, columns {0–3, 8–11}
	VPUNPCKHWD Y9, Y8, Y13   // (k, k+1) pairs, columns {4–7, 12–15}
	VPBROADCASTD (R8), Y10   // row 0's (k, k+1) int16 pair
	VPMADDWD Y12, Y10, Y11
	VPADDD Y11, Y0, Y0
	VPMADDWD Y13, Y10, Y11
	VPADDD Y11, Y1, Y1
	VPBROADCASTD 4(R8), Y10  // row 1
	VPMADDWD Y12, Y10, Y11
	VPADDD Y11, Y2, Y2
	VPMADDWD Y13, Y10, Y11
	VPADDD Y11, Y3, Y3
	VPBROADCASTD 8(R8), Y10  // row 2
	VPMADDWD Y12, Y10, Y11
	VPADDD Y11, Y4, Y4
	VPMADDWD Y13, Y10, Y11
	VPADDD Y11, Y5, Y5
	VPBROADCASTD 12(R8), Y10 // row 3
	VPMADDWD Y12, Y10, Y11
	VPADDD Y11, Y6, Y6
	VPMADDWD Y13, Y10, Y11
	VPADDD Y11, Y7, Y7
	ADDQ $16, R8             // one k-pair of the A panel (8 int16)
	ADDQ $32, R9             // one k-pair of the B panel (2 rows × 16 int8)
	DECQ CX
	JNZ  kloop
	// Permute the halves back to natural column order and store.
	VPERM2I128 $0x20, Y1, Y0, Y8
	VPERM2I128 $0x31, Y1, Y0, Y9
	VMOVDQU Y8, (R11)
	VMOVDQU Y9, 32(R11)
	VPERM2I128 $0x20, Y3, Y2, Y8
	VPERM2I128 $0x31, Y3, Y2, Y9
	VMOVDQU Y8, (R12)
	VMOVDQU Y9, 32(R12)
	VPERM2I128 $0x20, Y5, Y4, Y8
	VPERM2I128 $0x31, Y5, Y4, Y9
	VMOVDQU Y8, (R13)
	VMOVDQU Y9, 32(R13)
	VPERM2I128 $0x20, Y7, Y6, Y8
	VPERM2I128 $0x31, Y7, Y6, Y9
	VMOVDQU Y8, (BX)
	VMOVDQU Y9, 32(BX)
	VZEROUPPER
	RET
