//go:build !amd64

package tensor

// kernI8 on non-amd64 targets always runs the scalar reference kernel,
// which computes the same exact int32 sums as the AVX2 path.
func kernI8(c []int32, ldc int, ap []int16, bp []int8, kp int, first bool) {
	kernI8x16scalar(c, ldc, ap, bp, kp, first)
}
