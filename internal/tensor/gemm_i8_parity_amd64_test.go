//go:build amd64

package tensor

import (
	"math/rand"
	"testing"
)

// TestKernI8AVXMatchesScalar pins the asm/noasm contract directly at the
// micro-kernel boundary: the AVX2 VPMADDWD kernel and the scalar
// reference must produce identical int32 tiles on randomized
// pair-interleaved panels, for both first=true (overwrite) and
// first=false (accumulate onto prior partials).
func TestKernI8AVXMatchesScalar(t *testing.T) {
	if !gemmAVX2 {
		t.Skip("no AVX2 on this CPU; scalar path is the only kernel")
	}
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 100; iter++ {
		kp := rng.Intn(200) + 1
		ap := make([]int16, kp*2*gemmMR)
		bp := make([]int8, kp*2*gemmNR)
		for i := range ap {
			ap[i] = int16(rng.Intn(255) - 127)
		}
		for i := range bp {
			bp[i] = int8(rng.Intn(255) - 127)
		}
		ldc := gemmNR + rng.Intn(8)
		first := rng.Intn(2) == 0
		cAsm := make([]int32, gemmMR*ldc)
		cRef := make([]int32, gemmMR*ldc)
		if !first {
			for i := range cAsm {
				v := rng.Int31n(1000) - 500
				cAsm[i] = v
				cRef[i] = v
			}
		}
		gemmKernI8AVX(&cAsm[0], ldc, &ap[0], &bp[0], kp, first)
		kernI8x16scalar(cRef, ldc, ap, bp, kp, first)
		for i := range cRef {
			if cAsm[i] != cRef[i] {
				t.Fatalf("iter %d kp=%d ldc=%d first=%v: element %d asm=%d scalar=%d", iter, kp, ldc, first, i, cAsm[i], cRef[i])
			}
		}
	}
}

// TestGemmI8ForcedScalarMatchesDefault runs the full blocked path with
// the AVX2 gate flipped off and requires bit-identical output — the
// whole-pipeline version of the kernel parity check above.
func TestGemmI8ForcedScalarMatchesDefault(t *testing.T) {
	if !gemmAVX2 {
		t.Skip("no AVX2 on this CPU; nothing to cross-check")
	}
	rng := rand.New(rand.NewSource(31))
	m, k, n := 37, 261, 190
	a := randI8(rng, m*k)
	b := randI8(rng, k*n)

	run := func() []int32 {
		out := make([]int32, m*n)
		ia := getIArena()
		gemmI8Reserve(ia, m, k, n)
		gemmI8Serial(out, n, a, k, b, n, false, m, k, n, ia)
		ia.release()
		return out
	}
	withAVX := run()
	gemmAVX2 = false
	scalar := run()
	gemmAVX2 = true
	for i := range withAVX {
		if withAVX[i] != scalar[i] {
			t.Fatalf("element %d: avx=%d scalar=%d", i, withAVX[i], scalar[i])
		}
	}
}
