package tensor

import (
	"math/rand"
	"testing"
)

func randI8(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(rng.Intn(255) - 127) // [-127, 127]
	}
	return s
}

// TestGemmI8BlockedMatchesNaive drives the blocked int8 path over
// randomized shapes — including tile edges, odd k (pair padding), and
// multi-chunk k — and requires exact equality with the naive reference.
func TestGemmI8BlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1},
		{4, 16, 16},
		{5, 17, 33},   // edge rows, odd k, edge cols
		{12, 27, 100}, // conv-like: small m, odd k
		{3, 9, 257},   // wide, crosses gemmNC? no, crosses nr tiles
		{96, 256, 64},
		{100, 300, 530}, // crosses MC, KC, NC
		{8, 513, 48},    // two k-chunks + odd tail
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, transB := range []bool{false, true} {
			a := randI8(rng, m*k)
			var b []int8
			ldb := n
			if transB {
				b = randI8(rng, n*k)
				ldb = k
			} else {
				b = randI8(rng, k*n)
			}
			want := make([]int32, m*n)
			gemmI8Naive(want, n, a, k, b, ldb, transB, m, k, n)

			got := make([]int32, m*n)
			ia := getIArena()
			gemmI8Reserve(ia, m, k, n)
			gemmI8Serial(got, n, a, k, b, ldb, transB, m, k, n, ia)
			ia.release()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("m=%d k=%d n=%d transB=%v: element %d = %d, want %d", m, k, n, transB, i, got[i], want[i])
				}
			}

			// Parallel column split must be identical too.
			old := SetWorkers(4)
			gotPar := make([]int32, m*n)
			gemmI8Parallel(gotPar, n, a, k, b, ldb, transB, m, k, n)
			SetWorkers(old)
			for i := range want {
				if gotPar[i] != want[i] {
					t.Fatalf("parallel m=%d k=%d n=%d transB=%v: element %d = %d, want %d", m, k, n, transB, i, gotPar[i], want[i])
				}
			}
		}
	}
}

// TestGemmI8RandomizedShapes_Property fuzzes shapes more densely than the
// table above: 200 random (m, k, n) triples, all exact-equal to naive.
func TestGemmI8RandomizedShapes_Property(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		m := rng.Intn(40) + 1
		k := rng.Intn(80) + 1
		n := rng.Intn(120) + 1
		transB := rng.Intn(2) == 1
		a := randI8(rng, m*k)
		ldb := n
		var b []int8
		if transB {
			b = randI8(rng, n*k)
			ldb = k
		} else {
			b = randI8(rng, k*n)
		}
		want := make([]int32, m*n)
		gemmI8Naive(want, n, a, k, b, ldb, transB, m, k, n)
		got := make([]int32, m*n)
		ia := getIArena()
		gemmI8Reserve(ia, m, k, n)
		gemmI8Serial(got, n, a, k, b, ldb, transB, m, k, n, ia)
		ia.release()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d m=%d k=%d n=%d transB=%v: element %d = %d, want %d", iter, m, k, n, transB, i, got[i], want[i])
			}
		}
	}
}

// TestGemmI8WorkerCountIdentity pins the cross-worker determinism
// contract for the int8 backend: identical bits at 1, 2, 4, 8 workers.
func TestGemmI8WorkerCountIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, k, n := 24, 128, 600
	a := randI8(rng, m*k)
	b := randI8(rng, k*n)
	ref := make([]int32, m*n)
	old := SetWorkers(1)
	gemmI8Parallel(ref, n, a, k, b, n, false, m, k, n)
	for _, w := range []int{2, 4, 8} {
		SetWorkers(w)
		got := make([]int32, m*n)
		gemmI8Parallel(got, n, a, k, b, n, false, m, k, n)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: element %d = %d, want %d", w, i, got[i], ref[i])
			}
		}
	}
	SetWorkers(old)
}

// TestKernI8EdgeMatchesFullTilePath checks the padded edge kernel
// against naive on every (rows, cols) remainder combination.
func TestKernI8EdgeMatchesFullTilePath(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for rows := 1; rows <= gemmMR; rows++ {
		for cols := 1; cols <= gemmNR; cols++ {
			for _, kb := range []int{1, 2, 7, 32} {
				m, k, n := rows, kb, cols
				a := randI8(rng, m*k)
				b := randI8(rng, k*n)
				want := make([]int32, m*n)
				gemmI8Naive(want, n, a, k, b, n, false, m, k, n)

				kp := (kb + 1) / 2
				apack := make([]int16, kp*2*gemmMR)
				bpack := make([]int8, kp*2*gemmNR)
				packAI8(apack, a, k, 0, 0, m, kb)
				packBI8(bpack, b, n, false, 0, 0, kb, n)
				got := make([]int32, m*n)
				kernI8Edge(got, n, apack, bpack, rows, cols, kp, true)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("rows=%d cols=%d kb=%d: element %d = %d, want %d", rows, cols, kb, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestConv2dInt8WorkerCountIdentity: the quantized conv forward is
// bit-identical at every worker count (batched input so the unit loop
// actually fans out).
func TestConv2dInt8WorkerCountIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n, c, h, w := 8, 6, 14, 14
	cout, kh, kw := 10, 3, 3
	spec := ConvSpec{PadH: 1, PadW: 1}.Canon()
	x := RandUniform(rng, -1, 1, n, c, h, w)
	wq := randI8(rng, cout*c*kh*kw)
	qp := QuantParams{InScale: 1.0 / 64, InZP: -11, WScales: make([]float32, cout), RowSums: make([]int32, cout)}
	for oc := 0; oc < cout; oc++ {
		qp.WScales[oc] = float32(oc+1) / 300
		var s int32
		for _, v := range wq[oc*c*kh*kw : (oc+1)*c*kh*kw] {
			s += int32(v)
		}
		qp.RowSums[oc] = s
	}
	outShape := ConvOutShape(x.Shape(), []int{cout, c, kh, kw}, spec)

	ref := New(outShape...)
	old := SetWorkers(1)
	Conv2dInt8Into(ref, x, wq, []int{cout, c, kh, kw}, qp, spec)
	for _, workers := range []int{2, 4, 8} {
		SetWorkers(workers)
		got := New(outShape...)
		Conv2dInt8Into(got, x, wq, []int{cout, c, kh, kw}, qp, spec)
		if !ref.Equal(got) {
			t.Fatalf("workers=%d: conv int8 output differs from workers=1", workers)
		}
	}
	SetWorkers(old)
}

// TestConv2dInt8ZeroPointPadding: with a nonzero input zero-point, padded
// taps must contribute exactly nothing (the zp·rowSum correction), so a
// padded conv over a constant-zero input equals pure bias.
func TestConv2dInt8ZeroPointPadding(t *testing.T) {
	n, c, h, w := 1, 2, 5, 5
	cout, kh, kw := 3, 3, 3
	spec := ConvSpec{PadH: 1, PadW: 1}.Canon()
	x := New(n, c, h, w) // zeros
	rng := rand.New(rand.NewSource(23))
	wq := randI8(rng, cout*c*kh*kw)
	qp := QuantParams{
		InScale: 0.01, InZP: -127,
		WScales: []float32{0.02, 0.03, 0.04},
		RowSums: make([]int32, cout),
		Bias:    []float32{1, -2, 3},
	}
	for oc := 0; oc < cout; oc++ {
		var s int32
		for _, v := range wq[oc*c*kh*kw : (oc+1)*c*kh*kw] {
			s += int32(v)
		}
		qp.RowSums[oc] = s
	}
	out := New(ConvOutShape(x.Shape(), []int{cout, c, kh, kw}, spec)...)
	Conv2dInt8Into(out, x, wq, []int{cout, c, kh, kw}, qp, spec)
	l := out.Len() / cout
	for oc := 0; oc < cout; oc++ {
		for i := 0; i < l; i++ {
			if got := out.Data()[oc*l+i]; got != qp.Bias[oc] {
				t.Fatalf("channel %d pixel %d = %g, want bias %g (zero input must contribute nothing)", oc, i, got, qp.Bias[oc])
			}
		}
	}
}

// TestLinearInt8MatchesManual computes a tiny quantized linear layer by
// hand and checks the driver's fold.
func TestLinearInt8MatchesManual(t *testing.T) {
	x := FromSlice([]float32{0.5, -1, 0.25, 2}, 2, 2)
	wq := []int8{10, -20, 30, 40} // [out=2, in=2]
	qp := QuantParams{
		InScale: 0.25, InZP: 0,
		WScales: []float32{0.1, 0.2},
		RowSums: []int32{-10, 70},
		Bias:    []float32{0.5, -0.5},
	}
	dst := New(2, 2)
	LinearInt8Into(dst, x, wq, qp)
	// Quantized inputs: 0.5/0.25=2, -1/0.25=-4, 0.25/0.25=1, 2/0.25=8.
	// Row 0: acc = [2*10 + -4*-20, 2*30 + -4*40] = [100, -100]
	// out = acc*inScale*wScale + bias = [100*0.025+0.5, -100*0.05-0.5]
	want := []float32{100*0.25*0.1 + 0.5, -100*0.25*0.2 - 0.5, 0, 0}
	// Row 1: acc = [1*10 + 8*-20, 1*30 + 8*40] = [-150, 350]
	want[2] = -150*0.25*0.1 + 0.5
	want[3] = 350*0.25*0.2 - 0.5
	for i, w := range want {
		if got := dst.Data()[i]; got != w {
			t.Fatalf("element %d = %g, want %g", i, got, w)
		}
	}
}

// TestQuantizeI8IntoDegenerateScale: a non-positive scale maps everything
// to the zero-point (total, mirroring quant.Affine).
func TestQuantizeI8IntoDegenerateScale(t *testing.T) {
	dst := make([]int8, 3)
	QuantizeI8Into(dst, []float32{1, -2, 0}, 0, -5)
	for i, q := range dst {
		if q != -5 {
			t.Fatalf("element %d = %d, want zero-point -5", i, q)
		}
	}
}
