//go:build !amd64

package tensor

func kern4x16(c []float32, ldc int, ap, bp []float32, kb int, first bool) {
	kern4x16scalar(c, ldc, ap, bp, kb, first)
}

func kern1x16(c []float32, ap []float32, astride int, bp []float32, kb int, first bool) {
	kern1x16scalar(c, ap, astride, bp, kb, first)
}

// KernelBackend names the active micro-kernel implementation.
func KernelBackend() string { return "scalar" }
