package tensor

import (
	"math/rand"
	"testing"
)

// fillRand populates s with values in [-1, 1), plus occasional exact
// zeros and negative zeros to exercise the zero-handling edge cases the
// old kernels special-cased.
func fillRand(rng *rand.Rand, s []float32) {
	for i := range s {
		switch rng.Intn(16) {
		case 0:
			s[i] = 0
		case 1:
			s[i] = float32(math32Copysign(0, -1))
		default:
			s[i] = rng.Float32()*2 - 1
		}
	}
}

func math32Copysign(x, sign float32) float32 {
	if sign < 0 || (sign == 0 && 1/sign < 0) {
		if x < 0 {
			return x
		}
		return -x
	}
	if x < 0 {
		return -x
	}
	return x
}

// gemmCase runs one shape through gemmParallel with the given flags and
// demands exact float32 equality against the naive reference.
func gemmCase(t *testing.T, rng *rand.Rand, m, k, n int, transA, transB, acc bool) {
	t.Helper()
	var a, b []float32
	var lda, ldb int
	if transA {
		lda = m
		a = make([]float32, max1(k*m))
	} else {
		lda = k
		a = make([]float32, max1(m*k))
	}
	if transB {
		ldb = k
		b = make([]float32, max1(n*k))
	} else {
		ldb = n
		b = make([]float32, max1(k*n))
	}
	fillRand(rng, a)
	fillRand(rng, b)
	init := make([]float32, max1(m*n))
	fillRand(rng, init)

	got := make([]float32, len(init))
	want := make([]float32, len(init))
	copy(got, init)
	copy(want, init)

	gemmParallel(got, n, a, lda, transA, b, ldb, transB, m, k, n, acc)
	gemmNaive(want, n, a, lda, transA, b, ldb, transB, m, k, n, acc)

	for i := range want {
		if got[i] != want[i] && !(isNaN32(got[i]) && isNaN32(want[i])) {
			t.Fatalf("m=%d k=%d n=%d transA=%v transB=%v acc=%v: dst[%d] = %v, naive %v",
				m, k, n, transA, transB, acc, i, got[i], want[i])
		}
	}
}

func isNaN32(x float32) bool { return x != x }

// TestGEMMMatchesNaiveExact checks the blocked/packed/vectorized GEMM
// against the reference triple loop with *exact* float32 equality — the
// determinism contract of DESIGN.md §10 — over degenerate (m, n, or k of
// 1), tile-remainder, and multi-block shapes, under all transpose and
// accumulate combinations.
func TestGEMMMatchesNaiveExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1},
		{1, 7, 33},
		{5, 1, 17},
		{9, 300, 1},
		{3, 5, 7},
		{4, 16, 16},
		{7, 23, 19},    // all remainders
		{16, 27, 130},  // conv-like, n remainder
		{31, 300, 65},  // k crosses gemmKC, m/n remainders
		{100, 260, 40}, // m crosses gemmMC, k crosses gemmKC
		{12, 520, 24},  // two full k chunks plus remainder
		{64, 576, 256}, // the conv benchmark shape
		{97, 64, 515},  // n crosses gemmNC
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				for _, acc := range []bool{false, true} {
					gemmCase(t, rng, m, k, n, transA, transB, acc)
				}
			}
		}
	}
}

// TestGEMMMatchesNaiveRandomShapes fuzzes shapes beyond the curated list.
func TestGEMMMatchesNaiveRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 60; it++ {
		m := 1 + rng.Intn(70)
		k := 1 + rng.Intn(320)
		n := 1 + rng.Intn(90)
		gemmCase(t, rng, m, k, n, rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0)
	}
}

// TestGEMMWorkerCountBitIdentical runs the same problems under Workers ∈
// {1, 4, 8} and demands bit-identical outputs: worker count must only
// choose which goroutine computes an element, never how.
func TestGEMMWorkerCountBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	defer SetWorkers(SetWorkers(1))
	shapes := [][3]int{{16, 27, 1024}, {33, 300, 65}, {64, 576, 256}, {1, 512, 10}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		fillRand(rng, a)
		fillRand(rng, b)
		var ref []float32
		for _, w := range []int{1, 4, 8} {
			SetWorkers(w)
			dst := make([]float32, m*n)
			gemmParallel(dst, n, a, k, false, b, n, false, m, k, n, false)
			if ref == nil {
				ref = dst
				continue
			}
			for i := range ref {
				if dst[i] != ref[i] {
					t.Fatalf("m=%d k=%d n=%d: Workers=%d dst[%d]=%v differs from Workers=1 %v",
						m, k, n, w, i, dst[i], ref[i])
				}
			}
		}
	}
}
