package tensor

import (
	"math"
	"math/rand"
)

// RandUniform returns a tensor with elements drawn from U[lo, hi) using rng.
func RandUniform(rng *rand.Rand, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*rng.Float32()
	}
	return t
}

// RandNormal returns a tensor with elements drawn from N(mean, std^2).
func RandNormal(rng *rand.Rand, mean, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = mean + std*float32(rng.NormFloat64())
	}
	return t
}

// HeInit returns a tensor initialized with Kaiming-He normal initialization
// for a layer with the given fan-in, the standard initialization for
// ReLU networks (std = sqrt(2/fanIn)).
func HeInit(rng *rand.Rand, fanIn int, shape ...int) *Tensor {
	if fanIn < 1 {
		fanIn = 1
	}
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	return RandNormal(rng, 0, std, shape...)
}

// XavierInit returns a tensor initialized with Glorot/Xavier uniform
// initialization (limit = sqrt(6/(fanIn+fanOut))).
func XavierInit(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	if fanIn+fanOut < 1 {
		fanIn = 1
	}
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	return RandUniform(rng, -limit, limit, shape...)
}

// Arange returns a 1-D tensor [start, start+step, ...] of n elements.
func Arange(start, step float32, n int) *Tensor {
	t := New(n)
	v := start
	for i := 0; i < n; i++ {
		t.data[i] = v
		v += step
	}
	return t
}
