package tensor

import "fmt"

// MatMul returns the matrix product a×b for a of shape [m, k] and b of
// shape [k, n], computed by the blocked GEMM backend (gemm.go) and
// parallelized over the output according to Workers().
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	gemmParallel(out.data, n, a.data, k, false, b.data, n, false, m, k, n, false)
	return out
}

// MatMulAcc computes dst += a×b for a [m,k], b [k,n], dst [m,n].
func MatMulAcc(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAcc shapes %v += %v × %v", dst.shape, a.shape, b.shape))
	}
	gemmParallel(dst.data, n, a.data, k, false, b.data, n, false, m, k, n, true)
}

// MatMulTransB computes dst = a×bᵀ for a [m,k], b [n,k], dst [m,n],
// overwriting dst.
func MatMulTransB(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransB shapes %v = %v × %vᵀ", dst.shape, a.shape, b.shape))
	}
	gemmParallel(dst.data, n, a.data, k, false, b.data, k, true, m, k, n, false)
}

// MatMulTransAAcc computes dst += aᵀ×b for a [k,m], b [k,n], dst [m,n].
func MatMulTransAAcc(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAAcc shapes %v += %vᵀ × %v", dst.shape, a.shape, b.shape))
	}
	gemmParallel(dst.data, n, a.data, m, true, b.data, n, false, m, k, n, true)
}

// gemmParallel computes dst = A×B (or dst += A×B when acc) with the
// blocked kernel, splitting the output across Workers(). The split only
// selects which goroutine computes which output element — every element's
// accumulation chain is fixed by the determinism contract in gemm.go — so
// results are bit-identical for any worker count, and identical to
// gemmNaive. Tall outputs split by rows; short-and-wide outputs (the conv
// im2col shape: few output channels, many pixels) split by columns so all
// workers stay busy.
func gemmParallel(dst []float32, ldc int, a []float32, lda int, transA bool, b []float32, ldb int, transB bool, m, k, n int, acc bool) {
	if m == 0 || n == 0 {
		return
	}
	if Workers() <= 1 || m*k*n < 32768 {
		ar := getArena()
		gemmReserve(ar, m, k, n)
		gemmSerial(dst, ldc, a, lda, transA, b, ldb, transB, m, k, n, acc, ar)
		ar.release()
		return
	}
	if m >= n {
		parallelForChunks(m, func(lo, hi int) {
			// A stored [k,m] under transA: advancing by output row means
			// advancing by stored column, and lo*lda could exceed len(a).
			as := a[lo:]
			if !transA {
				as = a[lo*lda:]
			}
			ar := getArena()
			gemmReserve(ar, hi-lo, k, n)
			gemmSerial(dst[lo*ldc:], ldc, as, lda, transA, b, ldb, transB, hi-lo, k, n, acc, ar)
			ar.release()
		})
		return
	}
	parallelForChunks(n, func(jlo, jhi int) {
		bs := b[jlo:]
		if transB {
			bs = b[jlo*ldb:]
		}
		ar := getArena()
		gemmReserve(ar, m, k, jhi-jlo)
		gemmSerial(dst[jlo:], ldc, a, lda, transA, bs, ldb, transB, m, k, jhi-jlo, acc, ar)
		ar.release()
	})
}

// The matMul*Into helpers below keep the historical entry points (and
// their accumulate-into-dst semantics) used by tests and older callers;
// they are thin shims over gemmParallel.

// matMulInto computes dst = A×B for row-major A [m,k], B [k,n], dst [m,n].
func matMulInto(dst, a, b []float32, m, k, n int) {
	gemmParallel(dst, n, a, k, false, b, n, false, m, k, n, false)
}

// matMulAccInto computes dst += A×B, same layout as matMulInto.
func matMulAccInto(dst, a, b []float32, m, k, n int) {
	gemmParallel(dst, n, a, k, false, b, n, false, m, k, n, true)
}

// matMulTransAInto computes dst += Aᵀ×B for A [k,m], B [k,n], dst [m,n].
// Used for weight gradients. The transposed operand is packed into
// contiguous panels before the inner loop (gemm.go packA), replacing the
// strided column walk the old kernel paid per k step.
func matMulTransAInto(dst, a, b []float32, k, m, n int) {
	gemmParallel(dst, n, a, m, true, b, n, false, m, k, n, true)
}

// matMulTransBInto computes dst += A×Bᵀ for A [m,k], B [n,k], dst [m,n].
// Used for input gradients of linear layers.
func matMulTransBInto(dst, a, b []float32, m, k, n int) {
	gemmParallel(dst, n, a, k, false, b, k, true, m, k, n, true)
}
