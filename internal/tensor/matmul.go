package tensor

import "fmt"

// MatMul returns the matrix product a×b for a of shape [m, k] and b of
// shape [k, n]. The kernel parallelizes over rows of a according to
// Workers() and uses a cache-friendly ikj loop order.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// MatMulAcc computes dst += a×b for a [m,k], b [k,n], dst [m,n].
func MatMulAcc(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAcc shapes %v += %v × %v", dst.shape, a.shape, b.shape))
	}
	matMulAccInto(dst.data, a.data, b.data, m, k, n)
}

// MatMulTransB computes dst = a×bᵀ for a [m,k], b [n,k], dst [m,n],
// overwriting dst.
func MatMulTransB(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransB shapes %v = %v × %vᵀ", dst.shape, a.shape, b.shape))
	}
	dst.Zero()
	matMulTransBInto(dst.data, a.data, b.data, m, k, n)
}

// MatMulTransAAcc computes dst += aᵀ×b for a [k,m], b [k,n], dst [m,n].
func MatMulTransAAcc(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAAcc shapes %v += %vᵀ × %v", dst.shape, a.shape, b.shape))
	}
	matMulTransAInto(dst.data, a.data, b.data, k, m, n)
}

// matMulInto computes dst = A×B for row-major A [m,k], B [k,n], dst [m,n].
// dst must be zeroed by the caller (New does this). The kernel picks its
// parallel axis by shape: tall results split by rows; short-and-wide
// results (the common conv im2col shape — few output channels, many
// pixels) split by columns so all workers stay busy.
func matMulInto(dst, a, b []float32, m, k, n int) {
	w := Workers()
	if m >= 2*w || n < 4*w || w <= 1 {
		parallelForChunks(m, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				drow := dst[i*n : (i+1)*n]
				for p, av := range arow {
					if av == 0 {
						continue
					}
					brow := b[p*n : (p+1)*n]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		})
		return
	}
	parallelForChunks(n, func(jlo, jhi int) {
		for i := 0; i < m; i++ {
			arow := a[i*k : (i+1)*k]
			drow := dst[i*n+jlo : i*n+jhi]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*n+jlo : p*n+jhi]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// matMulAccInto computes dst += A×B (no zeroing), same layout as
// matMulInto.
func matMulAccInto(dst, a, b []float32, m, k, n int) {
	parallelForChunks(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			drow := dst[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// matMulTransAInto computes dst = Aᵀ×B for A [k,m], B [k,n], dst [m,n],
// accumulating into dst (caller zeroes when needed). Used for weight
// gradients.
func matMulTransAInto(dst, a, b []float32, k, m, n int) {
	// dst[i,j] += sum_p A[p,i]*B[p,j]. Parallelize over i with a strided
	// walk of A's column i.
	parallelForChunks(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// matMulTransBInto computes dst = A×Bᵀ for A [m,k], B [n,k], dst [m,n],
// accumulating into dst. Used for input gradients of linear layers.
func matMulTransBInto(dst, a, b []float32, m, k, n int) {
	parallelForChunks(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			drow := dst[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				drow[j] += s
			}
		}
	})
}
