package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulHandComputed(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	got := MatMul(a, b)
	want := FromSlice([]float32{19, 22, 43, 50}, 2, 2)
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandUniform(rng, -1, 1, 3, 3)
	id := New(3, 3)
	for i := 0; i < 3; i++ {
		id.Set(1, i, i)
	}
	if !MatMul(a, id).AllClose(a, 1e-6) {
		t.Fatal("A×I != A")
	}
	if !MatMul(id, a).AllClose(a, 1e-6) {
		t.Fatal("I×A != A")
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 16, 16}, {1, 64, 1}} {
		a := RandUniform(rng, -2, 2, dims[0], dims[1])
		b := RandUniform(rng, -2, 2, dims[1], dims[2])
		if !MatMul(a, b).AllClose(naiveMatMul(a, b), 1e-3) {
			t.Fatalf("MatMul mismatch for dims %v", dims)
		}
	}
}

func TestMatMulDimensionPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"inner-mismatch", func() { MatMul(New(2, 3), New(4, 2)) }},
		{"rank1", func() { MatMul(New(3), New(3, 2)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestMatMulTransHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// dst = Aᵀ×B with A [k,m], B [k,n].
	k, m, n := 4, 3, 5
	a := RandUniform(rng, -1, 1, k, m)
	b := RandUniform(rng, -1, 1, k, n)
	dst := New(m, n)
	matMulTransAInto(dst.Data(), a.Data(), b.Data(), k, m, n)
	at := New(m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			at.Set(a.At(j, i), i, j)
		}
	}
	if !dst.AllClose(naiveMatMul(at, b), 1e-4) {
		t.Fatal("matMulTransAInto mismatch")
	}

	// dst = A×Bᵀ with A [m,k], B [n,k].
	a2 := RandUniform(rng, -1, 1, m, k)
	b2 := RandUniform(rng, -1, 1, n, k)
	dst2 := New(m, n)
	matMulTransBInto(dst2.Data(), a2.Data(), b2.Data(), m, k, n)
	bt := New(k, n)
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			bt.Set(b2.At(j, i), i, j)
		}
	}
	if !dst2.AllClose(naiveMatMul(a2, bt), 1e-4) {
		t.Fatal("matMulTransBInto mismatch")
	}
}

func TestMatMulSerialParallelAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandUniform(rng, -1, 1, 33, 17)
	b := RandUniform(rng, -1, 1, 17, 29)
	prev := SetWorkers(1)
	serial := MatMul(a, b)
	SetWorkers(6)
	par := MatMul(a, b)
	SetWorkers(prev)
	if !serial.AllClose(par, 1e-6) {
		t.Fatal("backends disagree")
	}
}

func TestSetWorkersClamp(t *testing.T) {
	prev := SetWorkers(-5)
	if Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", Workers())
	}
	SetWorkers(prev)
}

// Property: (A×B)ᵀ == Bᵀ×Aᵀ within tolerance.
func TestMatMulTransposeIdentity_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := RandUniform(rng, -3, 3, m, k)
		b := RandUniform(rng, -3, 3, k, n)
		ab := MatMul(a, b)
		at := New(k, m)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				at.Set(a.At(j, i), i, j)
			}
		}
		bt := New(n, k)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				bt.Set(b.At(j, i), i, j)
			}
		}
		btat := MatMul(bt, at)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				d := ab.At(i, j) - btat.At(j, i)
				if d < 0 {
					d = -d
				}
				if d > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
