package tensor

import (
	"fmt"
	"math"
)

// checkSame panics unless a and b have identical shapes.
func checkSame(op string, a, b *Tensor) {
	if !sameShape(a.shape, b.shape) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Add returns a + b element-wise.
func Add(a, b *Tensor) *Tensor {
	checkSame("Add", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// AddInPlace accumulates b into a and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	checkSame("AddInPlace", a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
	return a
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	checkSame("Sub", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns the element-wise (Hadamard) product.
func Mul(a, b *Tensor) *Tensor {
	checkSame("Mul", a, b)
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Scale returns a*s element-wise.
func Scale(a *Tensor, s float32) *Tensor {
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// ScaleInPlace multiplies every element of a by s and returns a.
func ScaleInPlace(a *Tensor, s float32) *Tensor {
	for i := range a.data {
		a.data[i] *= s
	}
	return a
}

// AddScaledInPlace computes a += s*b and returns a (axpy).
func AddScaledInPlace(a *Tensor, s float32, b *Tensor) *Tensor {
	checkSame("AddScaledInPlace", a, b)
	for i := range a.data {
		a.data[i] += s * b.data[i]
	}
	return a
}

// Apply returns f applied to every element.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := New(a.shape...)
	for i := range out.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// ApplyInPlace applies f to every element of a and returns a.
func ApplyInPlace(a *Tensor, f func(float32) float32) *Tensor {
	for i := range a.data {
		a.data[i] = f(a.data[i])
	}
	return a
}

// Sum returns the sum of all elements (accumulated in float64 for
// stability).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the mean of all elements, or 0 for an empty tensor.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float32 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// AbsMax returns the maximum absolute element value, or 0 for an empty
// tensor. Used for INT8 range calibration.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element. Ties resolve to
// the lowest index. It panics on an empty tensor.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// ArgMaxRows treats t as a [rows, cols] matrix and returns the argmax of
// each row — the Top-1 class per batch element for a logits tensor.
func ArgMaxRows(t *Tensor) []int {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows requires rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		best, bi := row[0], 0
		for i, v := range row[1:] {
			if v > best {
				best, bi = v, i+1
			}
		}
		out[r] = bi
	}
	return out
}

// TopK treats t as a [rows, cols] matrix and returns, for each row, the
// indices of the k largest elements in descending order of value.
func TopK(t *Tensor, k int) [][]int {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: TopK requires rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	if k > cols {
		k = cols
	}
	out := make([][]int, rows)
	for r := 0; r < rows; r++ {
		row := t.data[r*cols : (r+1)*cols]
		idx := make([]int, cols)
		for i := range idx {
			idx[i] = i
		}
		// Partial selection sort: k is small (typically 5).
		for i := 0; i < k; i++ {
			bi := i
			for j := i + 1; j < cols; j++ {
				if row[idx[j]] > row[idx[bi]] {
					bi = j
				}
			}
			idx[i], idx[bi] = idx[bi], idx[i]
		}
		out[r] = idx[:k]
	}
	return out
}

// SoftmaxRows treats t as [rows, cols] and returns row-wise softmax
// probabilities, computed with the max-subtraction trick for stability.
func SoftmaxRows(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows requires rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(rows, cols)
	for r := 0; r < rows; r++ {
		in := t.data[r*cols : (r+1)*cols]
		o := out.data[r*cols : (r+1)*cols]
		m := in[0]
		for _, v := range in[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for i, v := range in {
			e := math.Exp(float64(v - m))
			o[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range o {
			o[i] *= inv
		}
	}
	return out
}

// L2Distance returns the Euclidean distance between two same-shaped
// tensors.
func L2Distance(a, b *Tensor) float64 {
	checkSame("L2Distance", a, b)
	var s float64
	for i := range a.data {
		d := float64(a.data[i] - b.data[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of the angle between two same-shaped
// tensors viewed as flat vectors, or 0 if either has zero norm.
func CosineSimilarity(a, b *Tensor) float64 {
	checkSame("CosineSimilarity", a, b)
	var dot, na, nb float64
	for i := range a.data {
		x, y := float64(a.data[i]), float64(b.data[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// CountNonFinite returns the number of NaN or Inf elements, a cheap
// corruption detector used by injection campaigns.
func (t *Tensor) CountNonFinite() int {
	n := 0
	for _, v := range t.data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			n++
		}
	}
	return n
}
