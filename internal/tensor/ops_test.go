package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)

	if got := Add(a, b); !got.Equal(FromSlice([]float32{11, 22, 33, 44}, 2, 2)) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(FromSlice([]float32{9, 18, 27, 36}, 2, 2)) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.Equal(FromSlice([]float32{10, 40, 90, 160}, 2, 2)) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 0.5); !got.Equal(FromSlice([]float32{0.5, 1, 1.5, 2}, 2, 2)) {
		t.Fatalf("Scale = %v", got)
	}
	if got := Apply(a, func(v float32) float32 { return v * v }); !got.Equal(FromSlice([]float32{1, 4, 9, 16}, 2, 2)) {
		t.Fatalf("Apply = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 4}, 2)
	AddInPlace(a, b)
	if !a.Equal(FromSlice([]float32{4, 6}, 2)) {
		t.Fatalf("AddInPlace = %v", a)
	}
	ScaleInPlace(a, 2)
	if !a.Equal(FromSlice([]float32{8, 12}, 2)) {
		t.Fatalf("ScaleInPlace = %v", a)
	}
	AddScaledInPlace(a, -1, b)
	if !a.Equal(FromSlice([]float32{5, 8}, 2)) {
		t.Fatalf("AddScaledInPlace = %v", a)
	}
	ApplyInPlace(a, func(v float32) float32 { return -v })
	if !a.Equal(FromSlice([]float32{-5, -8}, 2)) {
		t.Fatalf("ApplyInPlace = %v", a)
	}
}

func TestOpsShapeMismatchPanics(t *testing.T) {
	a := New(2, 2)
	b := New(4)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"Add", func() { Add(a, b) }},
		{"Sub", func() { Sub(a, b) }},
		{"Mul", func() { Mul(a, b) }},
		{"AddInPlace", func() { AddInPlace(a, b) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{3, -1, 4, 1, -5, 9}, 6)
	if got := x.Sum(); got != 11 {
		t.Fatalf("Sum = %g", got)
	}
	if got := x.Mean(); math.Abs(got-11.0/6) > 1e-9 {
		t.Fatalf("Mean = %g", got)
	}
	if got := x.Max(); got != 9 {
		t.Fatalf("Max = %g", got)
	}
	if got := x.Min(); got != -5 {
		t.Fatalf("Min = %g", got)
	}
	if got := x.AbsMax(); got != 9 {
		t.Fatalf("AbsMax = %g", got)
	}
	if got := x.ArgMax(); got != 5 {
		t.Fatalf("ArgMax = %d", got)
	}
	if got := New(0).Mean(); got != 0 {
		t.Fatalf("Mean of empty = %g, want 0", got)
	}
}

func TestArgMaxTieBreaksLow(t *testing.T) {
	x := FromSlice([]float32{2, 7, 7, 1}, 4)
	if got := x.ArgMax(); got != 1 {
		t.Fatalf("ArgMax tie = %d, want 1", got)
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]float32{
		0.1, 0.9, 0.0,
		5.0, -1., 2.0,
	}, 2, 3)
	got := ArgMaxRows(x)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestTopK(t *testing.T) {
	x := FromSlice([]float32{0.1, 0.9, 0.5, 0.3}, 1, 4)
	got := TopK(x, 3)[0]
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	// k larger than cols clamps.
	if got := TopK(x, 10)[0]; len(got) != 4 {
		t.Fatalf("TopK clamp = %v", got)
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	p := SoftmaxRows(x)
	// Row sums are 1 and large logits do not overflow.
	for r := 0; r < 2; r++ {
		var s float64
		for c := 0; c < 3; c++ {
			v := p.At(r, c)
			if math.IsNaN(float64(v)) || v < 0 || v > 1 {
				t.Fatalf("softmax[%d,%d] = %g out of range", r, c, v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %g", r, s)
		}
	}
	// Monotone in the logits.
	if !(p.At(0, 2) > p.At(0, 1) && p.At(0, 1) > p.At(0, 0)) {
		t.Fatal("softmax not monotone")
	}
	// Uniform logits give uniform probabilities.
	if math.Abs(float64(p.At(1, 0))-1.0/3) > 1e-5 {
		t.Fatalf("uniform row gives %g", p.At(1, 0))
	}
}

func TestDistances(t *testing.T) {
	a := FromSlice([]float32{1, 0}, 2)
	b := FromSlice([]float32{0, 1}, 2)
	if got := L2Distance(a, b); math.Abs(got-math.Sqrt2) > 1e-6 {
		t.Fatalf("L2Distance = %g", got)
	}
	if got := CosineSimilarity(a, b); math.Abs(got) > 1e-6 {
		t.Fatalf("CosineSimilarity orthogonal = %g", got)
	}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-6 {
		t.Fatalf("CosineSimilarity self = %g", got)
	}
	if got := CosineSimilarity(a, New(2)); got != 0 {
		t.Fatalf("CosineSimilarity zero vector = %g", got)
	}
}

func TestCountNonFinite(t *testing.T) {
	x := FromSlice([]float32{1, float32(math.NaN()), float32(math.Inf(1)), -2}, 4)
	if got := x.CountNonFinite(); got != 2 {
		t.Fatalf("CountNonFinite = %d, want 2", got)
	}
}

func TestRandConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := RandUniform(rng, -1, 1, 1000)
	if u.Max() > 1 || u.Min() < -1 {
		t.Fatalf("RandUniform out of range [%g, %g]", u.Min(), u.Max())
	}
	if math.Abs(u.Mean()) > 0.1 {
		t.Fatalf("RandUniform mean = %g, expected near 0", u.Mean())
	}
	n := RandNormal(rng, 5, 2, 5000)
	if math.Abs(n.Mean()-5) > 0.2 {
		t.Fatalf("RandNormal mean = %g, want ~5", n.Mean())
	}
	h := HeInit(rng, 100, 10000)
	std := math.Sqrt(2.0 / 100)
	var s float64
	for i := 0; i < h.Len(); i++ {
		s += float64(h.AtFlat(i)) * float64(h.AtFlat(i))
	}
	got := math.Sqrt(s / float64(h.Len()))
	if math.Abs(got-std) > 0.02 {
		t.Fatalf("HeInit std = %g, want ~%g", got, std)
	}
}

func TestRandDeterministic(t *testing.T) {
	a := RandUniform(rand.New(rand.NewSource(7)), 0, 1, 50)
	b := RandUniform(rand.New(rand.NewSource(7)), 0, 1, 50)
	if !a.Equal(b) {
		t.Fatal("same seed must produce identical tensors")
	}
}

func TestArange(t *testing.T) {
	x := Arange(2, 0.5, 4)
	want := FromSlice([]float32{2, 2.5, 3, 3.5}, 4)
	if !x.Equal(want) {
		t.Fatalf("Arange = %v", x)
	}
}

// Property: softmax output always sums to 1 per row and lies in [0,1].
func TestSoftmaxNormalized_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(4)
		cols := 1 + rng.Intn(10)
		x := RandUniform(rng, -50, 50, rows, cols)
		p := SoftmaxRows(x)
		for r := 0; r < rows; r++ {
			var s float64
			for c := 0; c < cols; c++ {
				v := float64(p.At(r, c))
				if v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub(Add(a,b), b) == a exactly is not
// guaranteed in float, but within tolerance.
func TestAddCommutative_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := RandUniform(rng, -100, 100, n)
		b := RandUniform(rng, -100, 100, n)
		return Add(a, b).Equal(Add(b, a)) && Sub(Add(a, b), b).AllClose(a, 1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
