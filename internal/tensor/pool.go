package tensor

import (
	"fmt"
	"math"
)

// PoolSpec describes the geometry of a 2-D pooling operation.
type PoolSpec struct {
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
}

// Canon returns the spec with zero strides defaulted to the kernel size
// (the common non-overlapping pooling configuration).
func (s PoolSpec) Canon() PoolSpec {
	if s.StrideH == 0 {
		s.StrideH = s.KernelH
	}
	if s.StrideW == 0 {
		s.StrideW = s.KernelW
	}
	return s
}

func checkPool(x *Tensor, spec PoolSpec) (PoolSpec, int, int) {
	spec = spec.Canon()
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: pooling input must be [N,C,H,W], got %v", x.shape))
	}
	if spec.KernelH <= 0 || spec.KernelW <= 0 {
		panic(fmt.Sprintf("tensor: invalid pooling kernel %dx%d", spec.KernelH, spec.KernelW))
	}
	if spec.KernelH > x.shape[2]+2*spec.PadH || spec.KernelW > x.shape[3]+2*spec.PadW {
		panic(fmt.Sprintf("tensor: pooling kernel %dx%d larger than padded input %v", spec.KernelH, spec.KernelW, x.shape))
	}
	oh := convOutSize(x.shape[2], spec.KernelH, spec.StrideH, spec.PadH)
	ow := convOutSize(x.shape[3], spec.KernelW, spec.StrideW, spec.PadW)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: pooling output %dx%d not positive for input %v spec %+v", oh, ow, x.shape, spec))
	}
	return spec, oh, ow
}

// MaxPool2d computes max pooling over x [N,C,H,W]. It returns the pooled
// tensor and the flat argmax index (into x's data) per output element,
// which MaxPool2dBackward uses to route gradients. Padded positions are
// treated as -Inf.
func MaxPool2d(x *Tensor, spec PoolSpec) (*Tensor, []int32) {
	spec, oh, ow := checkPool(x, spec)
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n, c, oh, ow)
	arg := make([]int32, n*c*oh*ow)
	planes := n * c
	parallelForChunks(planes, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			in := x.data[p*h*w : (p+1)*h*w]
			o := out.data[p*oh*ow : (p+1)*oh*ow]
			a := arg[p*oh*ow : (p+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bi := int32(-1)
					for ky := 0; ky < spec.KernelH; ky++ {
						iy := oy*spec.StrideH - spec.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < spec.KernelW; kx++ {
							ix := ox*spec.StrideW - spec.PadW + kx
							if ix < 0 || ix >= w {
								continue
							}
							v := in[iy*w+ix]
							if v > best || bi < 0 {
								best = v
								bi = int32(p*h*w + iy*w + ix)
							}
						}
					}
					o[oy*ow+ox] = best
					a[oy*ow+ox] = bi
				}
			}
		}
	})
	return out, arg
}

// MaxPool2dBackward scatters gradOut back to the input positions recorded
// in arg by MaxPool2d.
func MaxPool2dBackward(inShape []int, arg []int32, gradOut *Tensor) *Tensor {
	grad := New(inShape...)
	if len(arg) != gradOut.Len() {
		panic(fmt.Sprintf("tensor: MaxPool2dBackward arg length %d != gradOut length %d", len(arg), gradOut.Len()))
	}
	for i, src := range arg {
		if src >= 0 {
			grad.data[src] += gradOut.data[i]
		}
	}
	return grad
}

// AvgPool2d computes average pooling over x [N,C,H,W]. The divisor is the
// full kernel area (count_include_pad semantics, matching PyTorch's
// default).
func AvgPool2d(x *Tensor, spec PoolSpec) *Tensor {
	spec, oh, ow := checkPool(x, spec)
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n, c, oh, ow)
	inv := 1 / float32(spec.KernelH*spec.KernelW)
	planes := n * c
	parallelForChunks(planes, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			in := x.data[p*h*w : (p+1)*h*w]
			o := out.data[p*oh*ow : (p+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					for ky := 0; ky < spec.KernelH; ky++ {
						iy := oy*spec.StrideH - spec.PadH + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < spec.KernelW; kx++ {
							ix := ox*spec.StrideW - spec.PadW + kx
							if ix < 0 || ix >= w {
								continue
							}
							s += in[iy*w+ix]
						}
					}
					o[oy*ow+ox] = s * inv
				}
			}
		}
	})
	return out
}

// AvgPool2dBackward distributes gradOut uniformly over each pooling
// window.
func AvgPool2dBackward(inShape []int, spec PoolSpec, gradOut *Tensor) *Tensor {
	spec = spec.Canon()
	grad := New(inShape...)
	n, c, h, w := inShape[0], inShape[1], inShape[2], inShape[3]
	oh, ow := gradOut.shape[2], gradOut.shape[3]
	inv := 1 / float32(spec.KernelH*spec.KernelW)
	for p := 0; p < n*c; p++ {
		g := grad.data[p*h*w : (p+1)*h*w]
		go_ := gradOut.data[p*oh*ow : (p+1)*oh*ow]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				v := go_[oy*ow+ox] * inv
				for ky := 0; ky < spec.KernelH; ky++ {
					iy := oy*spec.StrideH - spec.PadH + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < spec.KernelW; kx++ {
						ix := ox*spec.StrideW - spec.PadW + kx
						if ix < 0 || ix >= w {
							continue
						}
						g[iy*w+ix] += v
					}
				}
			}
		}
	}
	return grad
}

// GlobalAvgPool2d averages each [H,W] plane, producing [N,C,1,1].
func GlobalAvgPool2d(x *Tensor) *Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: GlobalAvgPool2d input must be [N,C,H,W], got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n, c, 1, 1)
	inv := 1 / float32(h*w)
	for p := 0; p < n*c; p++ {
		in := x.data[p*h*w : (p+1)*h*w]
		var s float32
		for _, v := range in {
			s += v
		}
		out.data[p] = s * inv
	}
	return out
}

// GlobalAvgPool2dBackward distributes each pooled gradient uniformly over
// its plane.
func GlobalAvgPool2dBackward(inShape []int, gradOut *Tensor) *Tensor {
	grad := New(inShape...)
	n, c, h, w := inShape[0], inShape[1], inShape[2], inShape[3]
	inv := 1 / float32(h*w)
	for p := 0; p < n*c; p++ {
		v := gradOut.data[p] * inv
		g := grad.data[p*h*w : (p+1)*h*w]
		for i := range g {
			g[i] = v
		}
	}
	return grad
}
