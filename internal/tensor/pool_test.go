package tensor

import (
	"math/rand"
	"testing"
)

func TestMaxPool2dHandComputed(t *testing.T) {
	x := FromSlice([]float32{
		1, 3, 2, 4,
		5, 6, 7, 8,
		9, 2, 1, 0,
		3, 4, 5, 6,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2d(x, PoolSpec{KernelH: 2, KernelW: 2})
	want := FromSlice([]float32{6, 8, 9, 6}, 1, 1, 2, 2)
	if !out.Equal(want) {
		t.Fatalf("MaxPool2d = %v, want %v", out, want)
	}
	// The argmax of the top-left window (value 6) is flat index 5.
	if arg[0] != 5 {
		t.Fatalf("arg[0] = %d, want 5", arg[0])
	}
}

func TestMaxPool2dOverlappingStride(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	out, _ := MaxPool2d(x, PoolSpec{KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1})
	want := FromSlice([]float32{5, 6, 8, 9}, 1, 1, 2, 2)
	if !out.Equal(want) {
		t.Fatalf("overlapping MaxPool2d = %v, want %v", out, want)
	}
}

func TestMaxPool2dPadding(t *testing.T) {
	x := FromSlice([]float32{-5, -6, -7, -8}, 1, 1, 2, 2)
	// Padded positions are -Inf, so max of all-negative input stays the
	// input value, never 0.
	out, _ := MaxPool2d(x, PoolSpec{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1})
	if out.Max() != -5 {
		t.Fatalf("padded MaxPool max = %g, want -5", out.Max())
	}
}

func TestMaxPool2dBackwardRoutesToArgmax(t *testing.T) {
	x := FromSlice([]float32{
		1, 3,
		2, 4,
	}, 1, 1, 2, 2)
	out, arg := MaxPool2d(x, PoolSpec{KernelH: 2, KernelW: 2})
	if out.At(0, 0, 0, 0) != 4 {
		t.Fatalf("max = %g", out.At(0, 0, 0, 0))
	}
	grad := MaxPool2dBackward(x.Shape(), arg, FromSlice([]float32{10}, 1, 1, 1, 1))
	want := FromSlice([]float32{0, 0, 0, 10}, 1, 1, 2, 2)
	if !grad.Equal(want) {
		t.Fatalf("MaxPool2dBackward = %v, want %v", grad, want)
	}
}

func TestAvgPool2dHandComputed(t *testing.T) {
	x := FromSlice([]float32{
		1, 3, 2, 4,
		5, 7, 6, 8,
		1, 1, 1, 1,
		1, 1, 1, 1,
	}, 1, 1, 4, 4)
	out := AvgPool2d(x, PoolSpec{KernelH: 2, KernelW: 2})
	want := FromSlice([]float32{4, 5, 1, 1}, 1, 1, 2, 2)
	if !out.Equal(want) {
		t.Fatalf("AvgPool2d = %v, want %v", out, want)
	}
}

func TestAvgPool2dBackwardDistributes(t *testing.T) {
	inShape := []int{1, 1, 2, 2}
	gradOut := FromSlice([]float32{8}, 1, 1, 1, 1)
	grad := AvgPool2dBackward(inShape, PoolSpec{KernelH: 2, KernelW: 2}, gradOut)
	want := Full(2, 1, 1, 2, 2)
	if !grad.Equal(want) {
		t.Fatalf("AvgPool2dBackward = %v, want %v", grad, want)
	}
}

func TestGlobalAvgPool2d(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4, // channel 0: mean 2.5
		10, 10, 10, 10, // channel 1: mean 10
	}, 1, 2, 2, 2)
	out := GlobalAvgPool2d(x)
	if out.At(0, 0, 0, 0) != 2.5 || out.At(0, 1, 0, 0) != 10 {
		t.Fatalf("GlobalAvgPool2d = %v", out)
	}
	grad := GlobalAvgPool2dBackward(x.Shape(), FromSlice([]float32{4, 8}, 1, 2, 1, 1))
	if grad.At(0, 0, 1, 1) != 1 || grad.At(0, 1, 0, 0) != 2 {
		t.Fatalf("GlobalAvgPool2dBackward = %v", grad)
	}
}

func TestPoolGradientSumConservation(t *testing.T) {
	// Sum of max-pool input gradients equals sum of output gradients
	// (each output routes exactly once).
	rng := rand.New(rand.NewSource(5))
	x := RandUniform(rng, -1, 1, 2, 3, 8, 8)
	out, arg := MaxPool2d(x, PoolSpec{KernelH: 2, KernelW: 2})
	gradOut := RandUniform(rng, -1, 1, out.Shape()...)
	grad := MaxPool2dBackward(x.Shape(), arg, gradOut)
	if d := grad.Sum() - gradOut.Sum(); d > 1e-3 || d < -1e-3 {
		t.Fatalf("gradient mass not conserved: %g vs %g", grad.Sum(), gradOut.Sum())
	}
}

func TestPoolPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"rank3", func() { MaxPool2d(New(1, 2, 3), PoolSpec{KernelH: 1, KernelW: 1}) }},
		{"zero-kernel", func() { AvgPool2d(New(1, 1, 4, 4), PoolSpec{}) }},
		{"kernel-too-big", func() { MaxPool2d(New(1, 1, 2, 2), PoolSpec{KernelH: 5, KernelW: 5}) }},
		{"gap-rank3", func() { GlobalAvgPool2d(New(2, 3, 4)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestPoolSerialParallelAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := RandUniform(rng, -1, 1, 4, 8, 16, 16)
	prev := SetWorkers(1)
	s1, _ := MaxPool2d(x, PoolSpec{KernelH: 2, KernelW: 2})
	a1 := AvgPool2d(x, PoolSpec{KernelH: 2, KernelW: 2})
	SetWorkers(8)
	s2, _ := MaxPool2d(x, PoolSpec{KernelH: 2, KernelW: 2})
	a2 := AvgPool2d(x, PoolSpec{KernelH: 2, KernelW: 2})
	SetWorkers(prev)
	if !s1.Equal(s2) || !a1.Equal(a2) {
		t.Fatal("pool backends disagree")
	}
}
