package tensor

import "fmt"

// ConcatChannels concatenates [N,C_i,H,W] tensors along the channel
// dimension, the operation underlying dense blocks, inception modules and
// fire modules. All inputs must agree on N, H and W.
func ConcatChannels(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatChannels of no tensors")
	}
	n, h, w := ts[0].shape[0], ts[0].shape[2], ts[0].shape[3]
	ctot := 0
	for _, t := range ts {
		if t.Rank() != 4 || t.shape[0] != n || t.shape[2] != h || t.shape[3] != w {
			panic(fmt.Sprintf("tensor: ConcatChannels incompatible shape %v (want [%d,*,%d,%d])", t.shape, n, h, w))
		}
		ctot += t.shape[1]
	}
	out := New(n, ctot, h, w)
	plane := h * w
	for s := 0; s < n; s++ {
		off := s * ctot * plane
		for _, t := range ts {
			c := t.shape[1]
			copy(out.data[off:off+c*plane], t.data[s*c*plane:(s+1)*c*plane])
			off += c * plane
		}
	}
	return out
}

// SplitChannels splits a [N,C,H,W] tensor into chunks of the given channel
// counts (the inverse of ConcatChannels). The counts must sum to C.
func SplitChannels(t *Tensor, counts ...int) []*Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: SplitChannels input must be [N,C,H,W], got %v", t.shape))
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	sum := 0
	for _, k := range counts {
		if k <= 0 {
			panic(fmt.Sprintf("tensor: SplitChannels non-positive count %d", k))
		}
		sum += k
	}
	if sum != c {
		panic(fmt.Sprintf("tensor: SplitChannels counts %v do not sum to C=%d", counts, c))
	}
	out := make([]*Tensor, len(counts))
	plane := h * w
	for i, k := range counts {
		out[i] = New(n, k, h, w)
	}
	for s := 0; s < n; s++ {
		off := s * c * plane
		for i, k := range counts {
			copy(out[i].data[s*k*plane:(s+1)*k*plane], t.data[off:off+k*plane])
			off += k * plane
		}
	}
	return out
}

// ShuffleChannels permutes channels for ShuffleNet's channel-shuffle
// operation: with g groups, channel index c maps to output position
// (c % g) * (C/g) + c/g. Returns a new tensor.
func ShuffleChannels(t *Tensor, groups int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: ShuffleChannels input must be [N,C,H,W], got %v", t.shape))
	}
	n, c, h, w := t.shape[0], t.shape[1], t.shape[2], t.shape[3]
	if groups <= 0 || c%groups != 0 {
		panic(fmt.Sprintf("tensor: ShuffleChannels C=%d not divisible by groups=%d", c, groups))
	}
	out := New(t.shape...)
	plane := h * w
	cg := c / groups
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			dst := (ch%groups)*cg + ch/groups
			copy(out.data[(s*c+dst)*plane:(s*c+dst+1)*plane], t.data[(s*c+ch)*plane:(s*c+ch+1)*plane])
		}
	}
	return out
}

// UnshuffleChannels inverts ShuffleChannels with the same group count.
func UnshuffleChannels(t *Tensor, groups int) *Tensor {
	if t.Rank() != 4 {
		panic(fmt.Sprintf("tensor: UnshuffleChannels input must be [N,C,H,W], got %v", t.shape))
	}
	c := t.shape[1]
	if groups <= 0 || c%groups != 0 {
		panic(fmt.Sprintf("tensor: UnshuffleChannels C=%d not divisible by groups=%d", c, groups))
	}
	// Shuffling with C/groups groups inverts a shuffle with `groups`.
	return ShuffleChannels(t, c/groups)
}
