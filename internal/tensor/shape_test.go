package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConcatChannelsHandComputed(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8, 9, 10, 11, 12}, 1, 2, 2, 2)
	out := ConcatChannels(a, b)
	if got := out.Shape(); got[1] != 3 {
		t.Fatalf("concat shape %v", got)
	}
	if out.At(0, 0, 0, 0) != 1 || out.At(0, 1, 0, 0) != 5 || out.At(0, 2, 1, 1) != 12 {
		t.Fatalf("concat layout wrong: %v", out)
	}
}

func TestConcatChannelsBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandUniform(rng, -1, 1, 3, 2, 4, 4)
	b := RandUniform(rng, -1, 1, 3, 5, 4, 4)
	out := ConcatChannels(a, b)
	// Sample from each batch element and each source.
	for s := 0; s < 3; s++ {
		if out.At(s, 1, 2, 3) != a.At(s, 1, 2, 3) {
			t.Fatalf("batch %d: first-source mismatch", s)
		}
		if out.At(s, 2, 0, 0) != b.At(s, 0, 0, 0) {
			t.Fatalf("batch %d: second-source mismatch", s)
		}
	}
}

func TestConcatChannelsPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"empty", func() { ConcatChannels() }},
		{"batch-mismatch", func() { ConcatChannels(New(1, 2, 4, 4), New(2, 2, 4, 4)) }},
		{"spatial-mismatch", func() { ConcatChannels(New(1, 2, 4, 4), New(1, 2, 5, 4)) }},
		{"rank", func() { ConcatChannels(New(2, 4, 4)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestSplitChannelsInvertsConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandUniform(rng, -1, 1, 2, 3, 4, 4)
	b := RandUniform(rng, -1, 1, 2, 1, 4, 4)
	c := RandUniform(rng, -1, 1, 2, 2, 4, 4)
	parts := SplitChannels(ConcatChannels(a, b, c), 3, 1, 2)
	if !parts[0].Equal(a) || !parts[1].Equal(b) || !parts[2].Equal(c) {
		t.Fatal("SplitChannels does not invert ConcatChannels")
	}
}

func TestSplitChannelsPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"bad-sum", func() { SplitChannels(New(1, 4, 2, 2), 1, 2) }},
		{"zero-count", func() { SplitChannels(New(1, 4, 2, 2), 0, 4) }},
		{"rank", func() { SplitChannels(New(4, 2, 2), 4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestShuffleChannelsKnownPermutation(t *testing.T) {
	// 4 channels, 2 groups: [0 1 2 3] → channel c goes to (c%2)*2 + c/2,
	// i.e. 0→0, 1→2, 2→1, 3→3.
	x := New(1, 4, 1, 1)
	for c := 0; c < 4; c++ {
		x.Set(float32(c), 0, c, 0, 0)
	}
	out := ShuffleChannels(x, 2)
	want := []float32{0, 2, 1, 3}
	for c := 0; c < 4; c++ {
		if out.At(0, c, 0, 0) != want[c] {
			t.Fatalf("shuffled channel %d = %g, want %g", c, out.At(0, c, 0, 0), want[c])
		}
	}
}

func TestUnshuffleInvertsShuffle_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := []int{1, 2, 3, 6}[rng.Intn(4)]
		x := RandUniform(rng, -1, 1, 2, 6, 3, 3)
		return UnshuffleChannels(ShuffleChannels(x, groups), groups).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"indivisible", func() { ShuffleChannels(New(1, 5, 2, 2), 2) }},
		{"zero-groups", func() { ShuffleChannels(New(1, 4, 2, 2), 0) }},
		{"rank", func() { ShuffleChannels(New(4, 2, 2), 2) }},
		{"unshuffle-indivisible", func() { UnshuffleChannels(New(1, 5, 2, 2), 2) }},
		{"unshuffle-rank", func() { UnshuffleChannels(New(5, 2, 2), 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

// Property: concat then split is the identity for random channel
// partitions.
func TestConcatSplitRoundTrip_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		parts := make([]*Tensor, 1+rng.Intn(4))
		counts := make([]int, len(parts))
		for i := range parts {
			counts[i] = 1 + rng.Intn(4)
			parts[i] = RandUniform(rng, -1, 1, n, counts[i], 3, 3)
		}
		back := SplitChannels(ConcatChannels(parts...), counts...)
		for i := range parts {
			if !back[i].Equal(parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
