// Package tensor implements the dense N-dimensional float32 tensor that
// underpins the GoFI neural-network substrate. It provides constructors,
// element access, shape manipulation, element-wise arithmetic, reductions,
// matrix multiplication, 2-D convolution (forward and backward, with
// stride, padding and groups), and pooling.
//
// Convention: following gonum, operations panic on shape mismatch. A shape
// mismatch is a programming error in the calling model definition, not a
// runtime condition a caller can meaningfully recover from. All user-facing
// validation (e.g. fault-injection site legality) happens in package core,
// which returns errors.
//
// Tensors are always contiguous in row-major order. A Tensor may be a
// reshape view of another tensor (sharing the same backing slice), which
// keeps zero-copy flattening cheap for fully-connected heads.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense, contiguous, row-major N-dimensional array of float32.
// The zero value is an empty tensor with no elements.
type Tensor struct {
	data  []float32
	shape []int
}

// New returns a zero-filled tensor with the given shape.
// New() with no arguments returns a scalar-shaped tensor of one element.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{
		data:  make([]float32, n),
		shape: append([]int(nil), shape...),
	}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); the caller must not alias it unintentionally.
// It panics if len(data) does not match the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (=%d elements)", len(data), shape, n))
	}
	return &Tensor{data: data, shape: append([]int(nil), shape...)}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// checkShape validates a shape and returns its element count.
func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor; this is
// the documented mechanism for offline weight perturbation (see package
// core), mirroring PyTorchFI's direct weight-tensor modification.
func (t *Tensor) Data() []float32 { return t.data }

// offset computes the flat index for a multi-index, panicking on
// out-of-range coordinates.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at a multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set assigns the element at a multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// AtFlat returns the i-th element in row-major order.
func (t *Tensor) AtFlat(i int) float32 { return t.data[i] }

// SetFlat assigns the i-th element in row-major order.
func (t *Tensor) SetFlat(i int, v float32) { t.data[i] = v }

// Offset exposes the flat offset of a multi-index (used by the fault
// injector to pre-resolve injection sites once instead of per-forward).
func (t *Tensor) Offset(idx ...int) int { return t.offset(idx) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal element
// counts (shape itself may differ, e.g. copying into a reshaped view).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom length mismatch %d vs %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Reshape returns a view with a new shape sharing the same backing data.
// One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: invalid dimension %d in Reshape", d))
		default:
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension for Reshape(%v) of %d elements", shape, len(t.data)))
		}
		shape[infer] = len(t.data) / known
		known *= shape[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape(%v) incompatible with %d elements", shape, len(t.data)))
	}
	return &Tensor{data: t.data, shape: shape}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Equal reports whether two tensors have identical shape and elements.
func (t *Tensor) Equal(o *Tensor) bool {
	if !sameShape(t.shape, o.shape) {
		return false
	}
	for i, v := range t.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether two tensors have identical shape and elements
// within absolute tolerance tol.
func (t *Tensor) AllClose(o *Tensor, tol float32) bool {
	if !sameShape(t.shape, o.shape) {
		return false
	}
	for i, v := range t.data {
		d := v - o.data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus leading elements); full
// element dumps are rarely useful for the tensor sizes GoFI works with.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%g", t.data[i])
	}
	if n > show {
		fmt.Fprintf(&b, " ... (%d total)", n)
	}
	b.WriteString("]")
	return b.String()
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool { return sameShape(t.shape, o.shape) }
