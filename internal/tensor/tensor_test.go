package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		n     int
	}{
		{"scalar", nil, 1},
		{"vector", []int{5}, 5},
		{"matrix", []int{3, 4}, 12},
		{"rank4", []int{2, 3, 4, 5}, 120},
		{"zero-dim", []int{3, 0, 4}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			x := New(tc.shape...)
			if x.Len() != tc.n {
				t.Fatalf("Len = %d, want %d", x.Len(), tc.n)
			}
			if x.Rank() != len(tc.shape) {
				t.Fatalf("Rank = %d, want %d", x.Rank(), len(tc.shape))
			}
			for i := 0; i < x.Len(); i++ {
				if x.AtFlat(i) != 0 {
					t.Fatalf("element %d not zero-initialized", i)
				}
			}
		})
	}
}

func TestNewNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(3, -1)
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	x := FromSlice(d, 2, 3)
	if got := x.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %g, want 6", got)
	}
	// FromSlice wraps without copying.
	d[0] = 42
	if x.At(0, 0) != 42 {
		t.Fatal("FromSlice must share backing data")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	want := float32(0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				x.Set(want, i, j, k)
				if got := x.At(i, j, k); got != want {
					t.Fatalf("At(%d,%d,%d) = %g, want %g", i, j, k, got, want)
				}
				want++
			}
		}
	}
	// Row-major flat order must match the write order above.
	for i := 0; i < x.Len(); i++ {
		if x.AtFlat(i) != float32(i) {
			t.Fatalf("AtFlat(%d) = %g, want %d", i, x.AtFlat(i), i)
		}
	}
}

func TestOffsetMatchesRowMajor(t *testing.T) {
	x := New(3, 5, 7)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			for k := 0; k < 7; k++ {
				want := (i*5+j)*7 + k
				if got := x.Offset(i, j, k); got != want {
					t.Fatalf("Offset(%d,%d,%d) = %d, want %d", i, j, k, got, want)
				}
			}
		}
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tests := []struct {
		name string
		idx  []int
	}{
		{"negative", []int{-1, 0}},
		{"too-big", []int{0, 3}},
		{"wrong-rank", []int{0}},
	}
	x := New(2, 3)
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			x.At(tc.idx...)
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	c := x.Clone()
	c.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone must not share backing data")
	}
	if !c.SameShape(x) {
		t.Fatal("Clone must preserve shape")
	}
}

func TestReshape(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := x.Reshape(3, 2)
	if r.At(2, 1) != 6 {
		t.Fatalf("Reshape wrong layout: At(2,1) = %g", r.At(2, 1))
	}
	// Views share data.
	r.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must be a view")
	}
	// Inferred dimension.
	inf := x.Reshape(-1, 2)
	if inf.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", inf.Dim(0))
	}
	if got := x.Reshape(6).Rank(); got != 1 {
		t.Fatalf("flatten rank = %d, want 1", got)
	}
}

func TestReshapeErrors(t *testing.T) {
	x := New(2, 3)
	for _, tc := range []struct {
		name  string
		shape []int
	}{
		{"wrong-count", []int{4, 2}},
		{"double-infer", []int{-1, -1}},
		{"non-divisible", []int{-1, 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			x.Reshape(tc.shape...)
		})
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2, 3}, 3)
	c := FromSlice([]float32{1, 2, 3.05}, 3)
	d := FromSlice([]float32{1, 2, 3}, 1, 3)
	if !a.Equal(b) {
		t.Fatal("identical tensors must be Equal")
	}
	if a.Equal(c) {
		t.Fatal("different tensors must not be Equal")
	}
	if a.Equal(d) {
		t.Fatal("different shapes must not be Equal")
	}
	if !a.AllClose(c, 0.1) {
		t.Fatal("AllClose within tolerance must hold")
	}
	if a.AllClose(c, 0.01) {
		t.Fatal("AllClose outside tolerance must fail")
	}
}

func TestFillAndZero(t *testing.T) {
	x := New(4)
	x.Fill(7)
	for i := 0; i < 4; i++ {
		if x.AtFlat(i) != 7 {
			t.Fatal("Fill failed")
		}
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestCopyFrom(t *testing.T) {
	src := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	dst := New(4)
	dst.CopyFrom(src) // same element count, different shape: allowed
	if dst.AtFlat(3) != 4 {
		t.Fatal("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for element-count mismatch")
		}
	}()
	New(3).CopyFrom(src)
}

func TestStringTruncates(t *testing.T) {
	s := New(100).String()
	if len(s) == 0 || len(s) > 200 {
		t.Fatalf("String() length %d unreasonable: %q", len(s), s)
	}
}

// Property: Reshape never changes flat contents, for any valid
// factorization of the element count.
func TestReshapePreservesData_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 1 + rng.Intn(6)
		b := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		x := RandUniform(rng, -10, 10, a, b, c)
		r := x.Reshape(c, -1)
		for i := 0; i < x.Len(); i++ {
			if r.AtFlat(i) != x.AtFlat(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Offset is a bijection onto [0, Len) — every multi-index maps
// to a distinct flat offset.
func TestOffsetBijection_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 1 + rng.Intn(4)
		b := 1 + rng.Intn(4)
		c := 1 + rng.Intn(4)
		x := New(a, b, c)
		seen := make(map[int]bool, x.Len())
		for i := 0; i < a; i++ {
			for j := 0; j < b; j++ {
				for k := 0; k < c; k++ {
					off := x.Offset(i, j, k)
					if off < 0 || off >= x.Len() || seen[off] {
						return false
					}
					seen[off] = true
				}
			}
		}
		return len(seen) == x.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
