// Package train implements supervised training for GoFI models: softmax
// cross-entropy loss, SGD with momentum and weight decay, accuracy
// evaluation, and a training loop that can invoke a fault injector every
// forward pass — the paper's §IV-D "training for inherently error-resilient
// models" use case.
package train

import (
	"fmt"
	"math"

	"gofi/internal/nn"
	"gofi/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// [N, classes] against integer labels, and the gradient dL/dlogits
// (softmax(p) - onehot)/N. The fused formulation is numerically stable.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("train: logits must be [N,classes], got %v", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("train: %d labels for %d rows", len(labels), n))
	}
	probs := tensor.SoftmaxRows(logits)
	grad := probs.Clone()
	var loss float64
	inv := 1 / float32(n)
	for r, y := range labels {
		if y < 0 || y >= c {
			panic(fmt.Sprintf("train: label %d out of range [0,%d)", y, c))
		}
		p := float64(probs.At(r, y))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		grad.Set(grad.At(r, y)-1, r, y)
	}
	tensor.ScaleInPlace(grad, inv)
	return loss / float64(n), grad
}

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay, PyTorch-compatible semantics:
//
//	v ← momentum·v + (grad + wd·w);  w ← w − lr·v
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32
	velocity    map[*nn.Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: make(map[*nn.Param]*tensor.Tensor)}
}

// Step applies one update to every parameter and leaves gradients intact
// (call nn.ZeroGrads before the next backward).
func (o *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		w, g := p.Data.Data(), p.Grad.Data()
		if o.Momentum == 0 {
			for i := range w {
				upd := g[i] + o.WeightDecay*w[i]
				w[i] -= o.LR * upd
			}
			continue
		}
		v, ok := o.velocity[p]
		if !ok {
			v = tensor.New(p.Data.Shape()...)
			o.velocity[p] = v
		}
		vd := v.Data()
		for i := range w {
			upd := g[i] + o.WeightDecay*w[i]
			vd[i] = o.Momentum*vd[i] + upd
			w[i] -= o.LR * vd[i]
		}
	}
}

// BatchSource yields labelled training batches by index; the data package
// satisfies it.
type BatchSource interface {
	Batch(lo, n int) (*tensor.Tensor, []int)
}

// Config drives Loop.
type Config struct {
	Epochs      int
	BatchSize   int
	TrainSize   int // samples per epoch, drawn as [0, TrainSize)
	LR          float32
	Momentum    float32
	WeightDecay float32
	// LRDropEvery halves the learning rate every this many epochs
	// (0 disables the schedule).
	LRDropEvery int
	// BeforeForward, when non-nil, runs right before every forward pass
	// with the batch about to be consumed. The §IV-D resilient-training
	// procedure uses it to re-arm random fault-injection sites each step.
	BeforeForward func(step int)
	// AfterEpoch, when non-nil, observes per-epoch training loss.
	AfterEpoch func(epoch int, meanLoss float64)
}

// Result summarizes a training run.
type Result struct {
	Steps       int
	FinalLoss   float64
	LossByEpoch []float64
}

// Loop trains the model with SGD over the batch source.
func Loop(model nn.Layer, src BatchSource, cfg Config) (Result, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.TrainSize <= 0 {
		return Result{}, fmt.Errorf("train: invalid config %+v", cfg)
	}
	if cfg.TrainSize < cfg.BatchSize {
		return Result{}, fmt.Errorf("train: TrainSize %d smaller than BatchSize %d", cfg.TrainSize, cfg.BatchSize)
	}
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	params := nn.AllParams(model)
	nn.SetTraining(model, true)
	defer nn.SetTraining(model, false)

	var res Result
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.LRDropEvery > 0 && epoch > 0 && epoch%cfg.LRDropEvery == 0 {
			opt.LR /= 2
		}
		var epochLoss float64
		batches := 0
		for lo := 0; lo+cfg.BatchSize <= cfg.TrainSize; lo += cfg.BatchSize {
			x, labels := src.Batch(lo, cfg.BatchSize)
			if cfg.BeforeForward != nil {
				cfg.BeforeForward(step)
			}
			logits := nn.Run(model, x)
			loss, grad := SoftmaxCrossEntropy(logits, labels)
			nn.ZeroGrads(model)
			nn.RunBackward(model, grad)
			opt.Step(params)
			epochLoss += loss
			batches++
			step++
		}
		mean := epochLoss / float64(batches)
		res.LossByEpoch = append(res.LossByEpoch, mean)
		res.FinalLoss = mean
		if cfg.AfterEpoch != nil {
			cfg.AfterEpoch(epoch, mean)
		}
	}
	res.Steps = step
	return res, nil
}

// Accuracy evaluates Top-1 accuracy over samples [lo, lo+n) in eval mode,
// batching internally.
func Accuracy(model nn.Layer, src BatchSource, lo, n, batchSize int) float64 {
	nn.SetTraining(model, false)
	correct := 0
	total := 0
	for off := 0; off < n; off += batchSize {
		sz := batchSize
		if off+sz > n {
			sz = n - off
		}
		x, labels := src.Batch(lo+off, sz)
		logits := nn.Run(model, x)
		preds := tensor.ArgMaxRows(logits)
		for i, p := range preds {
			if p == labels[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// CorrectIndices returns the sample indices in [lo, lo+n) that the model
// classifies correctly in eval mode — the paper's campaigns inject faults
// only on correctly-classified inputs.
func CorrectIndices(model nn.Layer, src BatchSource, lo, n, batchSize int) []int {
	nn.SetTraining(model, false)
	var out []int
	for off := 0; off < n; off += batchSize {
		sz := batchSize
		if off+sz > n {
			sz = n - off
		}
		x, labels := src.Batch(lo+off, sz)
		preds := tensor.ArgMaxRows(nn.Run(model, x))
		for i, p := range preds {
			if p == labels[i] {
				out = append(out, lo+off+i)
			}
		}
	}
	return out
}
