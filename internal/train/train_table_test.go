package train

import (
	"math"
	"math/rand"
	"testing"

	"gofi/internal/nn"
	"gofi/internal/tensor"
)

// TestSoftmaxCrossEntropyTable drives the loss over a table of logit
// patterns with hand-computable expectations.
func TestSoftmaxCrossEntropyTable(t *testing.T) {
	cases := []struct {
		name     string
		logits   []float32
		shape    []int
		labels   []int
		wantLoss float64
		tol      float64
	}{
		{
			name:   "uniform-two-class",
			logits: []float32{0, 0}, shape: []int{1, 2}, labels: []int{0},
			wantLoss: math.Log(2), tol: 1e-6,
		},
		{
			name:   "uniform-four-class",
			logits: []float32{1, 1, 1, 1}, shape: []int{1, 4}, labels: []int{2},
			wantLoss: math.Log(4), tol: 1e-6,
		},
		{
			name:   "confident-correct",
			logits: []float32{30, 0, 0}, shape: []int{1, 3}, labels: []int{0},
			wantLoss: 0, tol: 1e-6,
		},
		{
			name:   "batch-mean",
			logits: []float32{0, 0, 0, 0}, shape: []int{2, 2}, labels: []int{0, 1},
			wantLoss: math.Log(2), tol: 1e-6,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loss, grad := SoftmaxCrossEntropy(tensor.FromSlice(tc.logits, tc.shape...), tc.labels)
			if math.Abs(loss-tc.wantLoss) > tc.tol {
				t.Fatalf("loss = %g, want %g", loss, tc.wantLoss)
			}
			// The gradient rows of a softmax cross-entropy always sum to 0:
			// sum(softmax) - 1 = 0, scaled by 1/N.
			n, c := tc.shape[0], tc.shape[1]
			for r := 0; r < n; r++ {
				var sum float64
				for j := 0; j < c; j++ {
					sum += float64(grad.At(r, j))
				}
				if math.Abs(sum) > 1e-6 {
					t.Fatalf("grad row %d sums to %g, want 0", r, sum)
				}
			}
		})
	}
}

// TestSGDStepTable pins single-parameter updates for every optimizer
// configuration: plain, momentum, weight decay, and both combined.
func TestSGDStepTable(t *testing.T) {
	cases := []struct {
		name         string
		lr, mom, wd  float32
		w0, g        float32
		want1, want2 float32 // weight after step 1 and step 2 (same grad)
	}{
		{"plain", 0.1, 0, 0, 1, 1, 0.9, 0.8},
		// v1=1, w=1-0.1=0.9; v2=0.5+1=1.5, w=0.9-0.15=0.75
		{"momentum", 0.1, 0.5, 0, 1, 1, 0.9, 0.75},
		// upd1=1+0.1*1=1.1, w=0.89; upd2=1+0.089, w=0.89-0.10890=0.7811
		{"weight-decay", 0.1, 0, 0.1, 1, 1, 0.89, 0.7811},
		{"zero-grad", 0.1, 0.9, 0, 2, 0, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &nn.Param{
				Data: tensor.FromSlice([]float32{tc.w0}, 1),
				Grad: tensor.FromSlice([]float32{tc.g}, 1),
			}
			opt := NewSGD(tc.lr, tc.mom, tc.wd)
			opt.Step([]*nn.Param{p})
			if got := p.Data.Data()[0]; math.Abs(float64(got-tc.want1)) > 1e-5 {
				t.Fatalf("after step 1: w = %g, want %g", got, tc.want1)
			}
			opt.Step([]*nn.Param{p})
			if got := p.Data.Data()[0]; math.Abs(float64(got-tc.want2)) > 1e-5 {
				t.Fatalf("after step 2: w = %g, want %g", got, tc.want2)
			}
		})
	}
}

// tableSource is a fixed in-memory BatchSource with two linearly separable
// 1×2×2 "images" per class.
type tableSource struct{}

func (tableSource) Batch(lo, n int) (*tensor.Tensor, []int) {
	x := tensor.New(n, 1, 2, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := (lo + i) % 2
		labels[i] = cls
		v := float32(1)
		if cls == 1 {
			v = -1
		}
		for j := 0; j < 4; j++ {
			x.Data()[i*4+j] = v
		}
	}
	return x, labels
}

// TestLoopConfigTable drives Loop's validation and success paths through
// one table.
func TestLoopConfigTable(t *testing.T) {
	model := func() nn.Layer {
		return nn.NewSequential("m",
			nn.NewFlatten("fl"),
			nn.NewLinear("fc", rand.New(rand.NewSource(9)), 4, 2, true),
		)
	}
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
		steps   int
	}{
		{"zero-epochs", Config{BatchSize: 2, TrainSize: 4}, true, 0},
		{"zero-batch", Config{Epochs: 1, TrainSize: 4}, true, 0},
		{"zero-train-size", Config{Epochs: 1, BatchSize: 2}, true, 0},
		{"batch-exceeds-train", Config{Epochs: 1, BatchSize: 8, TrainSize: 4}, true, 0},
		{"one-epoch", Config{Epochs: 1, BatchSize: 2, TrainSize: 4, LR: 0.1}, false, 2},
		{"three-epochs", Config{Epochs: 3, BatchSize: 2, TrainSize: 6, LR: 0.1}, false, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Loop(model(), tableSource{}, tc.cfg)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want config error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps != tc.steps {
				t.Fatalf("steps = %d, want %d", res.Steps, tc.steps)
			}
			if len(res.LossByEpoch) != tc.cfg.Epochs {
				t.Fatalf("per-epoch losses = %d, want %d", len(res.LossByEpoch), tc.cfg.Epochs)
			}
		})
	}
}

// TestAccuracyAndCorrectIndicesAgree cross-checks the two evaluation APIs
// on a model trained to separate the toy source: the accuracy over a range
// must equal len(CorrectIndices)/n for every batch size.
func TestAccuracyAndCorrectIndicesAgree(t *testing.T) {
	model := nn.NewSequential("m",
		nn.NewFlatten("fl"),
		nn.NewLinear("fc", rand.New(rand.NewSource(9)), 4, 2, true),
	)
	if _, err := Loop(model, tableSource{}, Config{Epochs: 20, BatchSize: 4, TrainSize: 16, LR: 0.2}); err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 3, 7, 16} {
		acc := Accuracy(model, tableSource{}, 0, 16, bs)
		idx := CorrectIndices(model, tableSource{}, 0, 16, bs)
		if got := float64(len(idx)) / 16; math.Abs(acc-got) > 1e-12 {
			t.Fatalf("batch %d: Accuracy %g != CorrectIndices fraction %g", bs, acc, got)
		}
	}
	// The separable toy problem must actually be learned.
	if acc := Accuracy(model, tableSource{}, 0, 16, 4); acc != 1 {
		t.Fatalf("accuracy %g, want 1.0 on separable data", acc)
	}
}
