package train

import (
	"math"
	"math/rand"
	"testing"

	"gofi/internal/data"
	"gofi/internal/nn"
	"gofi/internal/tensor"
)

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform loss = %g, want ln4 = %g", loss, math.Log(4))
	}
	// Gradient: (0.25 - onehot)/N.
	if math.Abs(float64(grad.At(0, 0))-(0.25-1)/2) > 1e-6 {
		t.Fatalf("grad[0,0] = %g", grad.At(0, 0))
	}
	if math.Abs(float64(grad.At(0, 1))-0.25/2) > 1e-6 {
		t.Fatalf("grad[0,1] = %g", grad.At(0, 1))
	}
	// Gradient rows sum to ~0.
	var s float64
	for c := 0; c < 4; c++ {
		s += float64(grad.At(1, c))
	}
	if math.Abs(s) > 1e-6 {
		t.Fatalf("grad row sum = %g", s)
	}
}

func TestSoftmaxCrossEntropyConfidentCorrect(t *testing.T) {
	logits := tensor.FromSlice([]float32{10, -10, -10}, 1, 3)
	loss, _ := SoftmaxCrossEntropy(logits, []int{0})
	if loss > 1e-6 {
		t.Fatalf("confident correct loss = %g, want ~0", loss)
	}
	lossWrong, _ := SoftmaxCrossEntropy(logits, []int{1})
	if lossWrong < 10 {
		t.Fatalf("confident wrong loss = %g, want ≥ 10", lossWrong)
	}
}

func TestSoftmaxCrossEntropyPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"rank1", func() { SoftmaxCrossEntropy(tensor.New(3), []int{0}) }},
		{"label-count", func() { SoftmaxCrossEntropy(tensor.New(2, 3), []int{0}) }},
		{"label-range", func() { SoftmaxCrossEntropy(tensor.New(1, 3), []int{5}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestSGDPlainStep(t *testing.T) {
	p := &nn.Param{
		Data: tensor.FromSlice([]float32{1, 2}, 2),
		Grad: tensor.FromSlice([]float32{0.5, -0.5}, 2),
	}
	NewSGD(0.1, 0, 0).Step([]*nn.Param{p})
	want := tensor.FromSlice([]float32{0.95, 2.05}, 2)
	if !p.Data.AllClose(want, 1e-6) {
		t.Fatalf("SGD step = %v, want %v", p.Data, want)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := &nn.Param{
		Data: tensor.FromSlice([]float32{0}, 1),
		Grad: tensor.FromSlice([]float32{1}, 1),
	}
	opt := NewSGD(1, 0.9, 0)
	opt.Step([]*nn.Param{p}) // v=1, w=-1
	opt.Step([]*nn.Param{p}) // v=1.9, w=-2.9
	if math.Abs(float64(p.Data.AtFlat(0))+2.9) > 1e-6 {
		t.Fatalf("momentum step w = %g, want -2.9", p.Data.AtFlat(0))
	}
}

func TestSGDWeightDecayPullsTowardZero(t *testing.T) {
	p := &nn.Param{
		Data: tensor.FromSlice([]float32{10}, 1),
		Grad: tensor.New(1), // zero gradient
	}
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*nn.Param{p})
	// w -= lr * wd * w = 10 - 0.1*0.5*10 = 9.5
	if math.Abs(float64(p.Data.AtFlat(0))-9.5) > 1e-6 {
		t.Fatalf("weight decay w = %g, want 9.5", p.Data.AtFlat(0))
	}
}

// smallNet is a compact CNN that can learn the synthetic dataset quickly.
func smallNet(rng *rand.Rand, classes int) nn.Layer {
	return nn.NewSequential("small",
		nn.NewConv2d("c1", rng, 3, 8, 3, nn.Conv2dConfig{Pad: 1}),
		nn.NewReLU("r1"),
		nn.NewMaxPool2d("p1", 2, 0, 0),
		nn.NewConv2d("c2", rng, 8, 16, 3, nn.Conv2dConfig{Pad: 1}),
		nn.NewReLU("r2"),
		nn.NewGlobalAvgPool2d("gap"),
		nn.NewFlatten("fl"),
		nn.NewLinear("fc", rng, 16, classes, true),
	)
}

func TestLoopLearnsSyntheticData(t *testing.T) {
	ds, err := data.NewClassification(data.ClassificationConfig{
		Classes: 4, Channels: 3, Size: 16, Noise: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	model := smallNet(rng, 4)

	before := Accuracy(model, ds, 10000, 80, 16)
	res, err := Loop(model, ds, Config{
		Epochs: 4, BatchSize: 16, TrainSize: 256, LR: 0.05, Momentum: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := Accuracy(model, ds, 10000, 80, 16)

	if res.Steps != 4*16 {
		t.Fatalf("steps = %d, want 64", res.Steps)
	}
	if len(res.LossByEpoch) != 4 {
		t.Fatalf("epoch losses = %v", res.LossByEpoch)
	}
	if res.LossByEpoch[3] >= res.LossByEpoch[0] {
		t.Fatalf("loss did not decrease: %v", res.LossByEpoch)
	}
	if after < before+0.3 || after < 0.8 {
		t.Fatalf("accuracy before %.2f after %.2f; expected clear learning", before, after)
	}
}

func TestLoopBeforeForwardRuns(t *testing.T) {
	ds, _ := data.NewClassification(data.ClassificationConfig{
		Classes: 2, Channels: 3, Size: 16, Noise: 0.1, Seed: 6,
	})
	model := smallNet(rand.New(rand.NewSource(2)), 2)
	calls := 0
	_, err := Loop(model, ds, Config{
		Epochs: 1, BatchSize: 8, TrainSize: 32, LR: 0.01,
		BeforeForward: func(step int) {
			if step != calls {
				t.Fatalf("step %d on call %d", step, calls)
			}
			calls++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("BeforeForward ran %d times, want 4", calls)
	}
}

func TestLoopConfigValidation(t *testing.T) {
	ds, _ := data.NewClassification(data.ClassificationConfig{
		Classes: 2, Channels: 3, Size: 16, Noise: 0.1, Seed: 7,
	})
	model := smallNet(rand.New(rand.NewSource(3)), 2)
	bad := []Config{
		{},
		{Epochs: 1, BatchSize: 0, TrainSize: 10},
		{Epochs: 1, BatchSize: 32, TrainSize: 16},
	}
	for i, cfg := range bad {
		if _, err := Loop(model, ds, cfg); err == nil {
			t.Fatalf("config %d: expected error", i)
		}
	}
}

func TestLoopLRSchedule(t *testing.T) {
	ds, _ := data.NewClassification(data.ClassificationConfig{
		Classes: 2, Channels: 3, Size: 16, Noise: 0.1, Seed: 8,
	})
	model := smallNet(rand.New(rand.NewSource(4)), 2)
	var losses []float64
	_, err := Loop(model, ds, Config{
		Epochs: 3, BatchSize: 8, TrainSize: 16, LR: 0.01, LRDropEvery: 1,
		AfterEpoch: func(_ int, l float64) { losses = append(losses, l) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 3 {
		t.Fatalf("AfterEpoch ran %d times", len(losses))
	}
}

func TestCorrectIndicesSubset(t *testing.T) {
	ds, _ := data.NewClassification(data.ClassificationConfig{
		Classes: 4, Channels: 3, Size: 16, Noise: 0.1, Seed: 9,
	})
	model := smallNet(rand.New(rand.NewSource(5)), 4)
	if _, err := Loop(model, ds, Config{Epochs: 3, BatchSize: 16, TrainSize: 256, LR: 0.05, Momentum: 0.9}); err != nil {
		t.Fatal(err)
	}
	idx := CorrectIndices(model, ds, 5000, 40, 8)
	if len(idx) < 20 {
		t.Fatalf("only %d of 40 correctly classified", len(idx))
	}
	// Every returned index must indeed classify correctly.
	for _, i := range idx[:5] {
		img, label := ds.Sample(i)
		logits := nn.Run(model, img.Reshape(1, 3, 16, 16))
		if tensor.ArgMaxRows(logits)[0] != label {
			t.Fatalf("index %d reported correct but misclassifies", i)
		}
	}
	// Accuracy computed two ways agrees.
	acc := Accuracy(model, ds, 5000, 40, 8)
	if math.Abs(acc-float64(len(idx))/40) > 1e-9 {
		t.Fatalf("Accuracy %.3f vs CorrectIndices fraction %.3f", acc, float64(len(idx))/40)
	}
}

func TestSGDVelocityIsolatedPerParam(t *testing.T) {
	a := &nn.Param{Data: tensor.FromSlice([]float32{0}, 1), Grad: tensor.FromSlice([]float32{1}, 1)}
	b := &nn.Param{Data: tensor.FromSlice([]float32{0}, 1), Grad: tensor.FromSlice([]float32{-1}, 1)}
	opt := NewSGD(1, 0.9, 0)
	opt.Step([]*nn.Param{a, b})
	opt.Step([]*nn.Param{a, b})
	// Velocities must not cross-contaminate: a moves down, b up, by the
	// same magnitude.
	if a.Data.AtFlat(0) != -b.Data.AtFlat(0) {
		t.Fatalf("velocity leak: a=%g b=%g", a.Data.AtFlat(0), b.Data.AtFlat(0))
	}
}

func TestAccuracyEmptyRange(t *testing.T) {
	ds, _ := data.NewClassification(data.ClassificationConfig{Classes: 2, Channels: 3, Size: 16, Noise: 0.1, Seed: 30})
	model := smallNet(rand.New(rand.NewSource(31)), 2)
	if got := Accuracy(model, ds, 0, 0, 8); got != 0 {
		t.Fatalf("empty accuracy = %g", got)
	}
}

func TestLoopWithAugmentation(t *testing.T) {
	// The augmenting wrapper satisfies BatchSource and still converges.
	ds, _ := data.NewClassification(data.ClassificationConfig{Classes: 4, Channels: 3, Size: 16, Noise: 0.1, Seed: 32})
	aug := data.NewAugment(ds, rand.New(rand.NewSource(33)), true, 2)
	model := smallNet(rand.New(rand.NewSource(34)), 4)
	res, err := Loop(model, aug, Config{Epochs: 4, BatchSize: 16, TrainSize: 256, LR: 0.05, Momentum: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.LossByEpoch[len(res.LossByEpoch)-1] >= res.LossByEpoch[0] {
		t.Fatalf("augmented training did not improve: %v", res.LossByEpoch)
	}
	// Evaluation on the un-augmented set still works well.
	if acc := Accuracy(model, ds, 9000, 60, 12); acc < 0.7 {
		t.Fatalf("augmented-trained accuracy %.2f", acc)
	}
}
