#!/bin/sh
# CI entry point.
#
# Two test passes: the full suite without the race detector, then a -short
# race pass. The race pass skips the training-heavy end-to-end runners
# (roughly 10x slower under the detector) but fully covers the campaign
# trial engine, whose tests drive Workers>1 over replicas sharing one
# trained parameter set — the concurrency that matters.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -short -timeout 20m ./...
