#!/bin/sh
# CI entry point.
#
# Two test passes: the full suite without the race detector, then a -short
# race pass. The race pass skips the training-heavy end-to-end runners
# (roughly 10x slower under the detector) but fully covers the campaign
# trial engine, whose tests drive Workers>1 over replicas sharing one
# trained parameter set — the concurrency that matters (including the
# shared obs metrics registry under eight workers).
#
# The fuzz smoke lines give each coverage-guided target a 10-second
# budget: enough to exercise the mutation engine against the seed corpus
# on every CI run without turning CI into a fuzzing farm.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -short -timeout 20m ./...

go test -run='^$' -fuzz='^FuzzFP16RoundTrip$' -fuzztime=10s ./internal/fpbits
go test -run='^$' -fuzz='^FuzzFlipBitFP32$' -fuzztime=10s ./internal/fpbits
go test -run='^$' -fuzz='^FuzzLoadCorrupt$' -fuzztime=10s ./internal/serialize
go test -run='^$' -fuzz='^FuzzSaveLoadRoundTrip$' -fuzztime=10s ./internal/serialize
go test -run='^$' -fuzz='^FuzzTrialRecordJSONLRoundTrip$' -fuzztime=10s ./internal/report
