#!/bin/sh
# CI entry point.
#
# Two test passes: the full suite without the race detector, then a -short
# race pass. The race pass skips the training-heavy end-to-end runners
# (roughly 10x slower under the detector) but fully covers the campaign
# trial engine, whose tests drive Workers>1 over replicas sharing one
# trained parameter set — the concurrency that matters (including the
# shared obs metrics registry under eight workers).
#
# The fuzz smoke lines give each coverage-guided target a 10-second
# budget: enough to exercise the mutation engine against the seed corpus
# on every CI run without turning CI into a fuzzing farm.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -short -timeout 20m ./...

# The int8 GEMM ships an amd64 assembly kernel behind a build tag; the
# arm64-crossed vet+build prove the portable (noasm) half of every
# signature still compiles, so a kernel-signature change can't silently
# break non-amd64 targets CI never executes.
GOARCH=arm64 go vet ./...
GOARCH=arm64 go build ./...

# The kernel backend promises bit-identical results at every worker
# count; -cpu varies GOMAXPROCS so the persistent pool actually runs
# multi-threaded (the container may default to 1 CPU), and the bench
# smoke compiles + executes every benchmark once so kernel-path rot
# can't hide behind "benchmarks aren't tests".
go test -cpu 1,4 ./internal/tensor ./internal/nn ./internal/campaign
go test -run='^$' -bench . -benchtime 1x ./internal/tensor

# The trial-batching path promises cross-lane isolation (each lane's
# logits bit-identical to a solo run) and a packer that never drops or
# duplicates a trial. Run that wall under the race detector at both
# GOMAXPROCS settings: lane arming is serialized per replica, and this
# is the line that proves it.
go test -race -cpu 1,4 -run 'TestCrossLaneIsolation|TestTrialPacker|TestBatchedRun' ./internal/campaign

# Per-package statement-coverage floors for the thin support packages.
# Their public APIs are small and fully table-testable, so coverage that
# drops below the floor means new code landed without tests.
#
# The go-test run and the percentage extraction are checked separately:
# a failing test, a package with no tests, or a changed -cover output
# format must each FAIL loudly, not slide through as an empty $pct that
# some awk comparison happens to accept.
check_cover() {
	if ! out=$(go test -cover "$1"); then
		echo "FAIL: go test -cover $1 failed" >&2
		echo "$out" >&2
		exit 1
	fi
	pct=$(echo "$out" | grep -o 'coverage: [0-9.]*' | grep -o '[0-9.]*') || true
	if [ -z "$pct" ]; then
		echo "FAIL: no coverage figure in 'go test -cover $1' output (package untested or output format changed)" >&2
		echo "$out" >&2
		exit 1
	fi
	awk -v p="$pct" -v f="$2" 'BEGIN { exit !(p >= f) }' || {
		echo "FAIL: coverage ${pct}% of $1 below floor $2%" >&2
		exit 1
	}
}
check_cover ./internal/train 95
check_cover ./internal/quant 95
check_cover ./internal/ibp 90
# The campaign engine now carries the probe/pack/fallback machinery;
# the floor keeps the batched path from growing untested branches.
check_cover ./internal/campaign 88
# The scheduler decides how every batched campaign executes; its cost
# model and DP partition are pure functions with table-driven tests, so
# the floor is high.
check_cover ./internal/campaign/sched 90
# The statistical layer decides when campaigns STOP; an untested branch
# here silently changes which trials a study runs. check_stats groups
# its gates: the fixed-seed property suite (interval coverage over a
# 1000-seed Monte Carlo matrix, stop monotonicity, stratified
# unbiasedness — pure math + pure folds, so the floor is the highest in
# the tree), the race-detected stop wall (stop-index determinism across
# the execution matrix, dedup-vs-brute-force equality, the
# cancellation-mid-stop shutdown ordering, the committed stop golden),
# and a coverage-guided FuzzStopRule smoke.
check_stats() {
	check_cover ./internal/campaign/stats 90
	go test -race -cpu 1,4 -run 'TestStopIndexDeterministic|TestStopUnchangedByDedup|TestDedupMatchesBruteForce|TestCancellationMidStopLeg|TestGoldenCampaignStop' ./internal/campaign
	go test -run='^$' -fuzz='^FuzzStopRule$' -fuzztime=10s ./internal/campaign/stats
}
check_stats

# The quantized backend's gates: the int8 golden fixture re-run under
# the race detector (the full worker x schedule x reuse matrix against
# one committed aggregate — byte-identity is the backend's core promise,
# and int32 accumulation makes it exact, not approximate), a coverage
# floor over internal/tensor (where all new int8 kernels live), and a
# one-iteration int8-vs-f32 campaign bench smoke so the quantized
# pipeline in bench_test.go can't rot between full runs (BENCH_int8.json
# records the measured ratio).
check_int8() {
	go test -race -cpu 1,4 -run 'TestGoldenCampaignAggregates/int8' ./internal/campaign
	check_cover ./internal/tensor 90
	go test -run='^$' -bench 'BenchmarkCampaign(F32|Int8)$' -benchtime 1x .
}
check_int8

# The campaign service's gates: the serve test wall under the race
# detector (sharded byte-identity against the local single-machine run,
# kill/resume determinism over durable checkpoints and truncated crash
# logs, stop-index pinning, the HTTP surface), the engine-layer
# shard-merge golden at both GOMAXPROCS settings (merged shard ranges
# {1,2,4,7} re-folded in global index order must hit the committed
# goldens across the worker x schedule x reuse corners), a coverage
# floor over the wire/coordinator/HTTP code, and the CLI end-to-end
# smokes (gofi-serve boot/shutdown, gofi-campaign -submit round trip).
check_serve() {
	go test -race -timeout 20m ./internal/serve
	go test -race -cpu 1,4 -run 'TestSplitTrials|TestShardMergeMatchesGolden' ./internal/campaign
	check_cover ./internal/serve 85
	go test ./cmd/gofi-serve ./cmd/gofi-campaign
}
check_serve

# The declarative scenario layer's gates: a statement-coverage floor
# over internal/scenario (schema, YAML subset, compiler, selectors,
# observers), the differential byte-identity suite (every committed
# example scenario must reproduce its hand-wired imperative twin's
# aggregate across the worker x schedule x reuse matrix), the committed
# scenario goldens (f32 observers + int8 stored-code), the CLI smoke
# executing each example end-to-end (including the quantized stored-code
# path), and a coverage-guided decode fuzz smoke (never panics, named
# errors, Canon-fixed-point).
check_scenario() {
	check_cover ./internal/scenario 90
	go test -run 'TestScenarioDifferentialByteIdentity|TestScenarioGolden' ./internal/experiments
	go test -run 'TestScenario' ./cmd/gofi-campaign
	go test -run='^$' -fuzz='^FuzzScenarioDecode$' -fuzztime=10s ./internal/scenario
}
check_scenario

# The cut-aware scheduler's two promises on the DenseNet campaign: with
# prefix reuse, auto must decline to pack (sequential warmed-store hits
# win); without it, auto must pack cut-similar trials. One iteration each
# keeps the planner's engine integration from rotting between full bench
# runs (BENCH_sched.json records the measured numbers).
go test -run='^$' -bench 'BenchmarkCampaignSched' -benchtime 1x .

go test -run='^$' -fuzz='^FuzzFP16RoundTrip$' -fuzztime=10s ./internal/fpbits
go test -run='^$' -fuzz='^FuzzFlipBitFP32$' -fuzztime=10s ./internal/fpbits
go test -run='^$' -fuzz='^FuzzLoadCorrupt$' -fuzztime=10s ./internal/serialize
go test -run='^$' -fuzz='^FuzzSaveLoadRoundTrip$' -fuzztime=10s ./internal/serialize
go test -run='^$' -fuzz='^FuzzCampaignCheckpointLoad$' -fuzztime=10s ./internal/serialize
go test -run='^$' -fuzz='^FuzzCampaignCheckpointRoundTrip$' -fuzztime=10s ./internal/serialize
go test -run='^$' -fuzz='^FuzzSpecDecode$' -fuzztime=10s ./internal/serve
go test -run='^$' -fuzz='^FuzzEventDecode$' -fuzztime=10s ./internal/serve
go test -run='^$' -fuzz='^FuzzTrialRecordJSONLRoundTrip$' -fuzztime=10s ./internal/report
go test -run='^$' -fuzz='^FuzzForwardFrom$' -fuzztime=10s ./internal/nn
go test -run='^$' -fuzz='^FuzzTrialPacker$' -fuzztime=10s ./internal/campaign
go test -run='^$' -fuzz='^FuzzBuildPlan$' -fuzztime=10s ./internal/campaign/sched
