#!/bin/sh
# Regenerates every paper table/figure; outputs land in results/.
set -x
cd "$(dirname "$0")"
mkdir -p bin results
go build -o bin/ ./cmd/...
./bin/gofi-overhead -trials 5 > results/fig3.txt 2>&1
./bin/gofi-overhead -batches -trials 3 > results/batchsweep.txt 2>&1
./bin/gofi-detect -scenes 20 -injections 3 > results/fig5.txt 2>&1
./bin/gofi-interpret > results/fig7.txt 2>&1
./bin/gofi-classify -trials 1000 > results/fig4.txt 2>&1
./bin/gofi-traintime -size 16 -epochs 4 -train-size 384 -eval-trials 3000 > results/table1.txt 2>&1
./bin/gofi-ibp -trials 600 > results/fig6.txt 2>&1
./bin/gofi-layers -trials 300 > results/layers.txt 2>&1
./bin/gofi-bits -trials 300 > results/bits.txt 2>&1
echo ALL-DONE
